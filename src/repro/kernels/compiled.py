"""The compiled sweep executor: plan-time lowering, fused full sweeps.

Lowering happens once per :class:`~repro.core.state.LoopyState`: the
reverse-edge pairing masks, the per-chunk dirty-destination sets and the
large scratch buffers are computed up front, and every *full* sweep then
runs a fused gather → log-product → normalize → scatter → combine
program in **natural edge order** with zero per-sweep index
construction.  Partial sweeps (a shrunken work queue, a priority batch)
fall back to the interpreted kernel functions, which share every
numerical routine with the fast path — so the two executors are
bit-exact across all schedules by construction.

Why natural order is bit-exact
------------------------------
The interpreted node sweep processes edges in destination-CSR order
(``gather_in_edges(arange(n))`` returns exactly ``in_edge_ids``).  The
only order-sensitive operation in the whole sweep is the per-destination
float accumulation inside ``np.bincount`` (messages, potentials,
normalization and the combine are all row-independent).  ``in_edge_ids``
is produced by a *stable* argsort of ``dst``, so within each destination
bin the edge ids ascend — which is exactly the order a natural
(ascending edge id) traversal feeds ``bincount``.  Identical per-bin
addition order ⇒ identical float64 partial sums ⇒ identical float32
results.  Everything else is elementwise or row-wise, so dropping the
CSR permutation changes no bits while eliminating four permuted
``(m, b)`` copies, the ragged index build and the per-edge delta pass
the node paradigm discards anyway.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.edge_kernel import edge_sweep
from repro.core.node_kernel import node_sweep
from repro.core.state import TINY, LoopyState
from repro.core.sweepstats import SweepStats
from repro.kernels.executor import SweepExecutor
from repro.kernels.ir import (
    BufferOp,
    BufferSpec,
    KernelProgram,
    KernelVerificationError,
    check_buffers,
    verify_program,
)
from repro.telemetry import get_metrics

__all__ = ["CompiledExecutor"]

_FLOAT = np.float32
_FSIZE = 4
_ISIZE = 8

#: numpy's pairwise-summation block size: reductions over fewer than 8
#: elements run sequentially in array order, so an explicit left-to-right
#: column accumulation is *bitwise identical* to ``.sum(axis=1)`` for
#: belief widths up to 8 — and an order of magnitude faster, because each
#: column op is one contiguous strided pass instead of a per-row reduce
_PAIRWISE_BLOCK = 8


def _row_sum(mat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row sums of ``(k, b)``, bit-identical to ``mat.sum(axis=1)``."""
    b = mat.shape[1]
    if b > _PAIRWISE_BLOCK:
        return np.sum(mat, axis=1, out=out)
    if b == 1:
        if out is None:
            return mat[:, 0].copy()
        out[...] = mat[:, 0]
        return out
    acc = np.add(mat[:, 0], mat[:, 1], out=out)
    for s in range(2, b):
        np.add(acc, mat[:, s], out=acc)
    return acc


def _row_max(mat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row maxima of ``(k, b)`` — max is exactly associative, so the
    column pass matches ``mat.max(axis=1)`` for any width."""
    b = mat.shape[1]
    if b == 1:
        if out is None:
            return mat[:, 0].copy()
        out[...] = mat[:, 0]
        return out
    acc = np.maximum(mat[:, 0], mat[:, 1], out=out)
    for s in range(2, b):
        np.maximum(acc, mat[:, s], out=acc)
    return acc


def _row_abs_diff_sum(
    a: np.ndarray, b_: np.ndarray, diff: np.ndarray, total: np.ndarray
) -> np.ndarray:
    """``np.abs(a - b_).sum(axis=1)`` through scratch, bit-identical for
    widths up to the pairwise block (wider falls back to the reduce)."""
    np.subtract(a, b_, out=diff)
    np.abs(diff, out=diff)
    return _row_sum(diff, out=total)


def _normalize_fast(mat: np.ndarray, total: np.ndarray) -> np.ndarray:
    """In-place :func:`normalize_rows` with a scratch row-sum buffer.

    Same semantics bit for bit: all-zero rows become uniform, everything
    divides by its row total.
    """
    sums = _row_sum(mat, out=total)
    zero = sums <= 0
    if zero.any():
        mat[zero] = 1.0
        sums = _row_sum(mat, out=total)
    mat /= sums[:, None]
    return mat


class _EdgeChunk:
    """One lowered chunk of the full-edge program (static per state)."""

    __slots__ = ("lo", "hi", "all_paired", "paired_idx", "rev_ids", "dirty")

    def __init__(self, state: LoopyState, lo: int, hi: int):
        self.lo = lo
        self.hi = hi
        rev = state.rev[lo:hi]
        paired = rev >= 0
        self.all_paired = bool(paired.all())
        self.paired_idx = None if self.all_paired else np.flatnonzero(paired)
        self.rev_ids = rev if self.all_paired else rev[self.paired_idx]
        mask = np.zeros(state.n, dtype=bool)
        mask[state.dst[lo:hi]] = True
        mask &= state.free_mask
        self.dirty = np.flatnonzero(mask)


class CompiledExecutor(SweepExecutor):
    """Fused gather–scatter executor, lowered once per state."""

    name = "compiled"

    def __init__(self, state: LoopyState, *, paradigm: str = "node", chunks: int = 8):
        start = time.perf_counter()
        self.paradigm = paradigm
        n, m, b = state.n, state.m, state.b

        # -- shared lowering ------------------------------------------------
        rev = state.rev
        paired = rev >= 0
        self._all_paired = bool(paired.all()) if m else False
        self._any_paired = bool(paired.any()) if m else False
        self._paired_idx = (
            None if self._all_paired else np.flatnonzero(paired)
        )
        self._rev_paired = (
            rev if self._all_paired else rev[self._paired_idx]
        )
        self._not_free = np.flatnonzero(~state.free_mask)
        self._has_observed = bool(len(self._not_free))
        self._all_nodes = np.arange(n, dtype=np.int64)
        self._all_edges = np.arange(m, dtype=np.int64)

        # -- scratch buffers (the lowered program never allocates (m, b)
        #    or (n, b) temporaries per sweep) --------------------------------
        self._raw = np.empty((m, b), dtype=_FLOAT)
        self._log_new = np.empty((m, b), dtype=_FLOAT)
        self._log_delta = np.empty((m, b), dtype=_FLOAT)
        self._logits = np.empty((n, b), dtype=_FLOAT)
        self._logits2 = np.empty((n, b), dtype=_FLOAT)
        self._source = np.empty((m, b), dtype=_FLOAT)
        self._back = np.empty((m, b), dtype=_FLOAT)
        self._edge_total = np.empty(m, dtype=_FLOAT)
        self._node_total = np.empty(n, dtype=_FLOAT)
        self._node_rowbuf = np.empty(n, dtype=_FLOAT)

        # -- edge-paradigm lowering: chunk boundaries + dirty sets ---------
        self._chunks = max(1, min(chunks, m)) if m else 1
        self._edge_chunks: list[_EdgeChunk] = []
        self._touched_full = np.empty(0, dtype=np.int64)
        if paradigm == "edge" and m:
            bounds = np.linspace(0, m, self._chunks + 1, dtype=np.int64)
            touched = np.zeros(n, dtype=bool)
            for k in range(self._chunks):
                chunk = _EdgeChunk(state, int(bounds[k]), int(bounds[k + 1]))
                self._edge_chunks.append(chunk)
                if len(chunk.dirty):
                    touched[chunk.dirty] = True
            self._touched_full = np.flatnonzero(touched)

        # -- buffer-op IR: describe the lowered program and verify it
        #    statically before the first sweep runs --------------------------
        self.programs = self._emit_programs(state)
        for program in self.programs.values():
            verify_program(program)

        self.build_seconds = time.perf_counter() - start
        get_metrics().histogram("kernel.build_s").record(self.build_seconds)

    # ------------------------------------------------------------------
    def _emit_programs(self, state: LoopyState) -> dict[str, KernelProgram]:
        """The lowered sweep as buffer-op IR (see :mod:`repro.kernels.ir`).

        One program per lowered paradigm, mirroring the exact op order of
        the fast path below; :func:`~repro.kernels.ir.verify_program`
        checks it at plan time and :meth:`verify_buffers` re-checks the
        live arrays on demand.
        """
        pot_shape = ("b", "b") if state.shared_potential else ("m", "b", "b")
        buffers = [
            BufferSpec("beliefs", ("n", "b"), "float32", "state"),
            BufferSpec("messages", ("m", "b"), "float32", "state"),
            BufferSpec("log_messages", ("m", "b"), "float32", "state"),
            BufferSpec("log_msg_sum", ("n", "b"), "float32", "state"),
            BufferSpec("log_priors", ("n", "b"), "float32", "state"),
            BufferSpec("potentials", pot_shape, "float32", "state"),
            BufferSpec("src", ("m",), "int64", "state"),
            BufferSpec("dst", ("m",), "int64", "state"),
            BufferSpec("rev", ("m",), "int64", "state"),
            BufferSpec("raw", ("m", "b"), "float32", "scratch"),
            BufferSpec("log_new", ("m", "b"), "float32", "scratch"),
            BufferSpec("log_delta", ("m", "b"), "float32", "scratch"),
            BufferSpec("logits", ("n", "b"), "float32", "scratch"),
            BufferSpec("logits2", ("n", "b"), "float32", "scratch"),
            BufferSpec("source", ("m", "b"), "float32", "scratch"),
            BufferSpec("back", ("m", "b"), "float32", "scratch"),
            BufferSpec("edge_total", ("m",), "float32", "scratch"),
            BufferSpec("node_total", ("n",), "float32", "scratch"),
            BufferSpec("node_rowbuf", ("n",), "float32", "scratch"),
        ]
        message_ops = [
            BufferOp("gather_source", reads=("beliefs", "src"), writes=("source",)),
            BufferOp("gather_back", reads=("messages", "rev"), writes=("back",)),
            BufferOp("clamp_back", reads=("back",), writes=("back",), inplace_ok=True),
            BufferOp(
                "cavity_divide",
                reads=("source", "back"),
                writes=("source",),
                inplace_ok=True,
            ),
            BufferOp(
                "normalize_cavity",
                reads=("source",),
                writes=("source", "edge_total"),
                inplace_ok=True,
            ),
            BufferOp(
                "apply_potential", reads=("source", "potentials"), writes=("raw",)
            ),
            BufferOp(
                "normalize_messages",
                reads=("raw",),
                writes=("raw", "edge_total"),
                inplace_ok=True,
            ),
            BufferOp(
                "damp", reads=("raw", "messages"), writes=("raw",), inplace_ok=True
            ),
        ]
        scatter_ops = [
            BufferOp("log_messages_new", reads=("raw",), writes=("log_new",)),
            BufferOp(
                "log_delta", reads=("log_new", "log_messages"), writes=("log_delta",)
            ),
            BufferOp(
                "scatter_accumulate",
                reads=("log_delta", "dst", "log_msg_sum"),
                writes=("log_msg_sum",),
                inplace_ok=True,
            ),
            BufferOp("store_messages", reads=("raw",), writes=("messages",)),
            BufferOp("store_log_messages", reads=("log_new",), writes=("log_messages",)),
        ]
        if self.paradigm == "node":
            ops = (
                *message_ops,
                *scatter_ops,
                BufferOp(
                    "combine_logits",
                    reads=("log_priors", "log_msg_sum"),
                    writes=("logits",),
                ),
                BufferOp(
                    "shift_rowmax",
                    reads=("logits",),
                    writes=("logits", "node_rowbuf"),
                    inplace_ok=True,
                ),
                BufferOp(
                    "exp_normalize",
                    reads=("logits",),
                    writes=("logits", "node_total"),
                    inplace_ok=True,
                ),
                BufferOp("restore_observed", reads=("beliefs",), writes=("logits",)),
                # old beliefs double as the diff scratch: elementwise, so
                # reading beliefs while writing beliefs is declared in-place
                BufferOp(
                    "belief_delta",
                    reads=("logits", "beliefs"),
                    writes=("beliefs",),
                    inplace_ok=True,
                ),
                BufferOp("reduce_delta", reads=("beliefs",), writes=("node_deltas",)),
                BufferOp("writeback_beliefs", reads=("logits",), writes=("beliefs",)),
            )
            buffers.append(BufferSpec("node_deltas", ("n",), "float32", "local"))
            program = KernelProgram(
                name="node_full_sweep",
                buffers=tuple(buffers),
                ops=ops,
                outputs=("beliefs", "messages", "log_messages", "log_msg_sum"),
                meta={"paradigm": "node", "chunks": 1},
            )
            return {"node": program}
        # edge paradigm: per-chunk message + scatter, residuals through the
        # dead back-gather scratch, then the dirty-row combine
        ops = (
            *message_ops,
            BufferOp(
                "edge_residuals",
                reads=("raw", "messages"),
                writes=("back", "edge_deltas"),
            ),
            *scatter_ops,
            BufferOp(
                "gather_priors", reads=("log_priors", "dirty_nodes"), writes=("logits",)
            ),
            BufferOp(
                "gather_msg_sum",
                reads=("log_msg_sum", "dirty_nodes"),
                writes=("logits2",),
            ),
            BufferOp(
                "add_logits",
                reads=("logits", "logits2"),
                writes=("logits",),
                inplace_ok=True,
            ),
            BufferOp(
                "shift_rowmax",
                reads=("logits",),
                writes=("logits", "node_rowbuf"),
                inplace_ok=True,
            ),
            BufferOp(
                "exp_normalize",
                reads=("logits",),
                writes=("logits", "node_total"),
                inplace_ok=True,
            ),
            BufferOp(
                "scatter_beliefs", reads=("logits", "dirty_nodes"), writes=("beliefs",)
            ),
        )
        buffers.append(BufferSpec("edge_deltas", ("m",), "float32", "local"))
        # chunk dirty sets are lowered at plan time, so the program reads
        # them like state: initialized before the first op runs
        buffers.append(BufferSpec("dirty_nodes", ("?",), "int64", "state"))
        program = KernelProgram(
            name="edge_chunked_sweep",
            buffers=tuple(buffers),
            ops=ops,
            outputs=("beliefs", "messages", "log_messages", "log_msg_sum"),
            meta={"paradigm": "edge", "chunks": self._chunks},
        )
        return {"edge": program}

    # ------------------------------------------------------------------
    def verify_buffers(self, state: LoopyState) -> int:
        """Runtime IR check: live arrays vs the declared programs.

        Raises :class:`~repro.kernels.ir.KernelVerificationError` on any
        shape/dtype/alias mismatch; returns the number of buffers checked.
        """
        arrays = {
            "beliefs": state.beliefs,
            "messages": state.messages,
            "log_messages": state.log_messages,
            "log_msg_sum": state.log_msg_sum,
            "log_priors": state.log_priors,
            "potentials": state.potentials,
            "src": state.src,
            "dst": state.dst,
            "rev": state.rev,
            "raw": self._raw,
            "log_new": self._log_new,
            "log_delta": self._log_delta,
            "logits": self._logits,
            "logits2": self._logits2,
            "source": self._source,
            "back": self._back,
            "edge_total": self._edge_total,
            "node_total": self._node_total,
            "node_rowbuf": self._node_rowbuf,
        }
        dims = {"n": state.n, "m": state.m, "b": state.b}
        for program in self.programs.values():
            problems = check_buffers(program, arrays, dims)
            if problems:
                raise KernelVerificationError(program.name, problems)
        return len(arrays)

    # ------------------------------------------------------------------
    def _is_full_nodes(self, active: np.ndarray) -> bool:
        n = len(self._all_nodes)
        return (
            n > 0
            and len(active) == n
            and bool(active[0] == 0)
            and bool(active[-1] == n - 1)
            and bool(np.array_equal(active, self._all_nodes))
        )

    def _is_full_edges(self, active: np.ndarray) -> bool:
        m = len(self._all_edges)
        return (
            m > 0
            and len(active) == m
            and bool(active[0] == 0)
            and bool(active[-1] == m - 1)
            and bool(np.array_equal(active, self._all_edges))
        )

    # ------------------------------------------------------------------
    def _messages_natural(
        self,
        state: LoopyState,
        lo: int,
        hi: int,
        *,
        update_rule: str,
        semiring: str,
        all_paired: bool,
        paired_idx: np.ndarray | None,
        rev_ids: np.ndarray,
    ) -> np.ndarray:
        """Messages for the contiguous edge range ``[lo, hi)`` in natural
        order — the fused equivalent of ``cavity_messages`` /
        ``propagate_messages`` on an ``arange`` slice."""
        source = np.take(
            state.beliefs, state.src[lo:hi], axis=0, out=self._source[lo:hi]
        )
        total = self._edge_total[lo:hi]
        if update_rule == "sum_product":
            if all_paired:
                back = np.take(
                    state.messages, rev_ids, axis=0, out=self._back[lo:hi]
                )
                np.maximum(back, TINY, out=back)
                np.divide(source, back, out=source)
                source = _normalize_fast(source, total)
            elif paired_idx is not None and len(paired_idx):
                back = np.maximum(state.messages[rev_ids], TINY)
                source[paired_idx] = source[paired_idx] / back
                source = _normalize_fast(source, total)
        elif update_rule != "broadcast":
            raise ValueError(f"unknown update_rule {update_rule!r}")
        raw = self._apply_potential(state, source, lo, hi, semiring)
        return _normalize_fast(raw, total)

    def _apply_potential(
        self, state: LoopyState, source: np.ndarray, lo: int, hi: int, semiring: str
    ) -> np.ndarray:
        """``raw_e[c] = ⊕_b source_e[b] · J_e[b, c]`` over ``[lo, hi)``."""
        out = self._raw[lo:hi]
        if semiring == "sum":
            if state.shared_potential:
                np.matmul(source, state.potentials, out=out)
            else:
                np.einsum(
                    "eb,ebc->ec", source, state.potentials[lo:hi], out=out
                )
            return out
        if semiring != "max":
            raise ValueError(f"unknown semiring {semiring!r}")
        step = max(1, 1 << 16)
        for s in range(0, hi - lo, step):
            e = min(s + step, hi - lo)
            mats = (
                state.potentials
                if state.shared_potential
                else state.potentials[lo + s : lo + e]
            )
            out[s:e] = (source[s:e, :, None] * mats).max(axis=1)
        return out

    def _scatter_log_delta(
        self, state: LoopyState, lo: int, hi: int, msgs: np.ndarray
    ) -> None:
        """The fused ``store_messages`` scatter for ``[lo, hi)`` in natural
        order: log, delta, per-destination accumulate, write-back."""
        new_logs = self._log_new[lo:hi]
        np.log(np.maximum(msgs, TINY, out=new_logs), out=new_logs)
        log_delta = np.subtract(
            new_logs, state.log_messages[lo:hi], out=self._log_delta[lo:hi]
        )
        dsts = state.dst[lo:hi]
        for s in range(state.b):
            state.log_msg_sum[:, s] += np.bincount(
                dsts, weights=log_delta[:, s], minlength=state.n
            ).astype(_FLOAT)
        state.messages[lo:hi] = msgs
        state.log_messages[lo:hi] = new_logs

    def _combine_rows(self, state: LoopyState, nodes: np.ndarray) -> None:
        """``state.beliefs[nodes] = state.combine_nodes(nodes)`` through
        scratch — same op order as :meth:`LoopyState.combine_nodes`, so
        bitwise identical, but with ``np.take`` gathers instead of fancy
        indexing and column-loop reductions instead of axis-1 reduces."""
        k = len(nodes)
        logits = np.take(state.log_priors, nodes, axis=0, out=self._logits[:k])
        logits += np.take(
            state.log_msg_sum, nodes, axis=0, out=self._logits2[:k]
        )
        logits -= _row_max(logits, out=self._node_rowbuf[:k])[:, None]
        out = np.exp(logits, out=logits)
        _normalize_fast(out, self._node_total[:k])
        state.beliefs[nodes] = out

    # ------------------------------------------------------------------
    def node_sweep(self, state, active_nodes, *, update_rule="sum_product",
                   semiring="sum", damping=0.0):
        if self.paradigm != "node" or not self._is_full_nodes(active_nodes):
            return node_sweep(
                state, active_nodes,
                update_rule=update_rule, semiring=semiring, damping=damping,
            )
        stats = SweepStats()
        n, m, b = state.n, state.m, state.b

        if m:
            msgs = self._messages_natural(
                state, 0, m,
                update_rule=update_rule, semiring=semiring,
                all_paired=self._all_paired, paired_idx=self._paired_idx,
                rev_ids=self._rev_paired,
            )
            if damping > 0.0:
                msgs *= 1.0 - damping
                msgs += damping * state.messages
            # the node paradigm discards per-edge deltas, so the fused
            # program skips them entirely (the interpreted path computes
            # and drops them — no state depends on the difference)
            self._scatter_log_delta(state, 0, m, msgs)

        logits = np.add(state.log_priors, state.log_msg_sum, out=self._logits)
        logits -= _row_max(logits, out=self._node_rowbuf)[:, None]
        new = np.exp(logits, out=logits)
        new = _normalize_fast(new, self._node_total)
        old = state.beliefs
        if self._has_observed:
            new[self._not_free] = old[self._not_free]
        # old is dead after the delta, so it doubles as the diff scratch
        np.subtract(new, old, out=old)
        np.abs(old, out=old)
        deltas = _row_sum(old)
        state.beliefs[:] = new

        # accounting: identical to the interpreted kernel — the abstract
        # machine did the same math; only the dispatch fused
        stats.nodes_processed = n
        stats.edges_processed = m
        stats.flops = m * (2 * b * b + 2 * b) + n * (4 * b)
        stats.random_bytes = m * (2 * b * _FSIZE)
        stats.random_accesses = m * 2
        stats.sequential_bytes = n * (3 * b * _FSIZE) + m * (b * _FSIZE)
        stats.atomic_ops = 0
        stats.reduction_elems = n
        stats.kernel_launches = 1
        stats.fused_launches = 1
        return deltas, stats

    # ------------------------------------------------------------------
    def edge_sweep(self, state, active_edges, *, update_rule="sum_product",
                   semiring="sum", damping=0.0, chunks=8):
        usable = (
            self.paradigm == "edge"
            and max(1, min(chunks, len(active_edges))) == self._chunks
            and self._is_full_edges(active_edges)
        )
        if not usable:
            return edge_sweep(
                state, active_edges,
                update_rule=update_rule, semiring=semiring, damping=damping,
                chunks=chunks,
            )
        stats = SweepStats()
        n, m, b = state.n, state.m, state.b
        edge_deltas = np.empty(m, dtype=np.float32)

        for chunk in self._edge_chunks:
            lo, hi = chunk.lo, chunk.hi
            msgs = self._messages_natural(
                state, lo, hi,
                update_rule=update_rule, semiring=semiring,
                all_paired=chunk.all_paired, paired_idx=chunk.paired_idx,
                rev_ids=chunk.rev_ids,
            )
            if damping > 0.0:
                msgs *= 1.0 - damping
                msgs += damping * state.messages[lo:hi]
            old = state.messages[lo:hi]
            # back-message scratch is dead once msgs exist; reuse for diff
            _row_abs_diff_sum(
                msgs, old, self._back[lo:hi], edge_deltas[lo:hi]
            )
            self._scatter_log_delta(state, lo, hi, msgs)
            if len(chunk.dirty):
                self._combine_rows(state, chunk.dirty)
            stats.kernel_launches += 2
            stats.fused_launches += 1

        touched_nodes = self._touched_full
        n_touched = len(touched_nodes)
        stats.edges_processed = m
        stats.nodes_processed = n_touched
        stats.flops = m * (2 * b * b + 2 * b) + n_touched * (4 * b)
        stats.sequential_bytes = m * (2 * b * _FSIZE + 2 * _ISIZE)
        stats.random_bytes = m * (b * _FSIZE)
        stats.random_accesses = m
        stats.atomic_ops = m
        stats.reduction_elems = n_touched
        return edge_deltas, touched_nodes, stats

"""repro.kernels — the compiled sweep-execution layer (DESIGN.md §13).

Historically every sweep dispatched through the per-sweep kernel
functions (:func:`repro.core.node_kernel.node_sweep`,
:func:`repro.core.edge_kernel.edge_sweep`), recomputing the gather
indices, reverse-edge masks and scratch arrays on every call.  This
package lowers a ``(graph, schedule, paradigm)`` triple **once** into a
small set of fused gather–scatter NumPy programs — message gather,
log-space product, normalize, residual — cached on the executor object
and reused across sweeps:

:mod:`repro.kernels.executor`
    The :class:`SweepExecutor` protocol, the ``EXECUTORS`` registry and
    the interpreted fallback (bit-exact, the reference semantics).

:mod:`repro.kernels.compiled`
    The compiled executor: plan-time lowering, full-sweep fast paths in
    natural edge order, preallocated scratch buffers.  Validated
    bit-exact against the interpreted executor (posteriors ≤ 1e-12;
    see ``tests/test_kernels_executor.py``).

:mod:`repro.kernels.layout`
    Belief-store layout as a first-class measured choice — the
    ``LAYOUTS`` registry (``aos`` / ``soa`` / ``blocked``) and
    structure-sharing graph conversion.

:mod:`repro.kernels.autotune`
    The plan-time layout autotuner: deterministic probe-sweep costing
    under a fixed measurement seed, recorded on
    :class:`repro.credo.runner.ExecutionPlan`.

:mod:`repro.kernels.ir`
    The buffer-op IR the compiled lowering emits — per-op read/write/
    alias sets over named buffers — plus the plan-time verifier
    (:func:`~repro.kernels.ir.verify_program`) and the optional runtime
    cross-check (:func:`~repro.kernels.ir.check_buffers`).
"""

from repro.kernels.autotune import LayoutDecision, autotune_layout
from repro.kernels.executor import (
    EXECUTORS,
    InterpretedExecutor,
    SweepExecutor,
    make_executor,
    normalize_executor,
)
from repro.kernels.ir import (
    BufferOp,
    BufferSpec,
    KernelProgram,
    KernelVerificationError,
    check_buffers,
    verify_program,
)
from repro.kernels.layout import LAYOUTS, normalize_layout, with_layout

__all__ = [
    "BufferOp",
    "BufferSpec",
    "EXECUTORS",
    "KernelProgram",
    "KernelVerificationError",
    "LAYOUTS",
    "InterpretedExecutor",
    "LayoutDecision",
    "SweepExecutor",
    "autotune_layout",
    "check_buffers",
    "make_executor",
    "normalize_executor",
    "normalize_layout",
    "verify_program",
    "with_layout",
]

"""Plan-time layout autotuning (DESIGN.md §13.4).

The paper picked AoS once, for one machine, from one cachegrind run
(§3.4).  This module turns that one-off into a measured, per-graph
decision: at plan time we probe a seeded sample of edges to estimate
*gather locality* (how often an edge's source beliefs already sit in the
cache neighbourhood of its streamed destination), then score each
registered layout with the belief-store cache-line model:

``cost(L) = G · lines_per_access(L) + n · lines_per_sweep_node(L) + D(L)``

where ``G`` is the estimated number of non-local gathers per sweep and
``D(L)`` charges layouts whose :meth:`dense` is a copy rather than a
view (the vectorized executors materialize dense state at the graph
boundary).  The decision is a pure function of the graph structure and
the measurement seed — re-running with the same seed always returns the
same :class:`LayoutDecision`, which is what makes plans reproducible and
the parity grid meaningful.

Wall-clock probe timings are *recorded* (``kernel.probe_s`` histogram)
so ``credo profile`` can show what tuning cost, but they never influence
the decision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.beliefs import BLOCK_NODES, make_store
from repro.core.graph import BeliefGraph
from repro.kernels.layout import LAYOUTS, normalize_layout
from repro.telemetry import get_metrics

__all__ = ["LayoutDecision", "autotune_layout"]

#: edges sampled by the locality probe (enough for a stable estimate,
#: cheap enough to run at plan time on every graph)
PROBE_EDGES = 4096

#: nodes materialized per layout for the wall-clock probe
PROBE_NODES = 2048

#: source nodes within this id distance of the streamed destination are
#: assumed cache-resident regardless of layout
LOCALITY_WINDOW = 4 * BLOCK_NODES


@dataclass(frozen=True)
class LayoutDecision:
    """The autotuner's verdict plus everything needed to audit it."""

    #: chosen canonical layout name
    layout: str
    #: modeled cache-line cost per sweep, by layout (lower is better)
    scores: dict[str, float] = field(default_factory=dict)
    #: fraction of probed edges whose gather was window-local
    locality: float = 0.0
    #: how many edges the locality probe sampled
    probe_edges: int = 0
    #: measurement seed the probe sampling used
    seed: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "layout": self.layout,
            "scores": dict(self.scores),
            "locality": self.locality,
            "probe_edges": self.probe_edges,
            "seed": self.seed,
        }


def _probe_locality(graph: BeliefGraph, seed: int) -> tuple[float, int]:
    """Estimate the fraction of message gathers that stay window-local."""
    m = graph.n_edges
    if m == 0:
        return 1.0, 0
    k = min(m, PROBE_EDGES)
    if k == m:
        sample = np.arange(m)
    else:
        rng = np.random.default_rng(seed)
        sample = rng.choice(m, size=k, replace=False)
    local = np.abs(graph.src[sample] - graph.dst[sample]) <= LOCALITY_WINDOW
    return float(local.mean()), int(k)


def _time_probe(graph: BeliefGraph, layout: str) -> float:
    """Wall-clock one dense round-trip through a small store of ``layout``.

    Telemetry-only: the result feeds the ``kernel.probe_s`` histogram and
    nothing else.
    """
    k = min(graph.n_nodes, PROBE_NODES)
    dims = graph.dims[:k] if k else graph.dims
    start = time.perf_counter()
    store = make_store(dims, layout)
    dense = store.dense()
    store.load_dense(dense)
    return time.perf_counter() - start


def autotune_layout(
    graph: BeliefGraph,
    *,
    seed: int = 0,
    record: bool = True,
) -> LayoutDecision:
    """Score every registered layout against ``graph`` and pick the best.

    Deterministic under a fixed ``seed``: the probe sample, the scores
    and the tie-break (registry order) are all reproducible.  Set
    ``record=False`` to skip the telemetry wall-clock probes (the
    decision is identical either way).
    """
    locality, probed = _probe_locality(graph, seed)
    n = graph.n_nodes
    gathers = graph.n_edges * (1.0 - locality)

    width = max(int(graph.dims.max(initial=1)), 1)
    dense_copy_lines = 2.0 * n * (width * 4) / 64.0  # read + write a copy

    hist = get_metrics().histogram("kernel.probe_s") if record else None
    scores: dict[str, float] = {}
    for layout in LAYOUTS:
        # one representative-width node is enough to read the line model
        probe_store = make_store(np.array([width], dtype=np.int64), layout)
        access = probe_store.cache_lines_per_access()
        sweep = probe_store.cache_lines_per_sweep_node()
        penalty = 0.0 if probe_store.dense_is_view() else dense_copy_lines
        scores[layout] = gathers * access + n * sweep + penalty
        if hist is not None:
            hist.record(_time_probe(graph, layout))

    best = min(LAYOUTS, key=lambda name: (scores[name], LAYOUTS.index(name)))
    return LayoutDecision(
        layout=normalize_layout(best),
        scores=scores,
        locality=locality,
        probe_edges=probed,
        seed=seed,
    )

"""Buffer-op IR for lowered sweep programs, with a static verifier.

When :class:`~repro.kernels.compiled.CompiledExecutor` lowers a state it
also emits a :class:`KernelProgram` per fused sweep — a declarative
description of every buffer the program touches and, per fused op, which
buffers it reads and writes.  :func:`verify_program` then checks the
description *at plan time*, before any sweep runs:

* every referenced buffer is declared exactly once;
* no op reads a scratch/local buffer that nothing has written yet
  (uninitialized read);
* no op reads a buffer whose memory was last written **through a
  different name** in the same alias group (the materialized
  write-after-read hazard — the compiled program equivalent of the
  linter's RPR403);
* an op that reads and writes aliasing buffers must declare
  ``inplace_ok`` (elementwise ufuncs with ``out=`` on an operand are
  safe; a gather or matmul into its own input is not);
* every declared output is actually written.

:func:`check_buffers` is the optional *runtime* companion: given the
live arrays it confirms the declared shapes, dtypes and — via
``np.may_share_memory`` — the declared alias structure.  The driver runs
it when ``LoopyConfig.verify_kernels`` is set, and the sharded runner
runs it for every shard when ``instrument=`` is given (alongside the
race detector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BufferSpec",
    "BufferOp",
    "KernelProgram",
    "KernelVerificationError",
    "verify_program",
    "check_buffers",
]

#: buffer roles: ``state`` arrays exist before the program runs (their
#: initial contents are readable); ``scratch`` is plan-time allocated and
#: sweep-reused (reads before the first write are garbage); ``local`` is
#: allocated fresh each sweep (same uninitialized-read rule).
BUFFER_KINDS = ("state", "scratch", "local")


class KernelVerificationError(ValueError):
    """A lowered program failed static or runtime verification."""

    def __init__(self, program: str, problems: list[str]):
        self.program = program
        self.problems = list(problems)
        lines = "\n  - ".join(self.problems)
        super().__init__(f"kernel program {program!r} failed verification:\n  - {lines}")


@dataclass(frozen=True)
class BufferSpec:
    """One named buffer: symbolic shape (dim names or int literals as
    strings; ``"?"`` opts a dim out of runtime checking) and dtype."""

    name: str
    shape: tuple[str, ...]
    dtype: str
    kind: str = "state"

    def __post_init__(self) -> None:
        if self.kind not in BUFFER_KINDS:
            raise ValueError(f"unknown buffer kind {self.kind!r}")


@dataclass(frozen=True)
class BufferOp:
    """One fused op: what it reads and writes, by buffer name.

    ``inplace_ok`` asserts the op tolerates its reads aliasing its
    writes (elementwise ufuncs evaluate per element, so ``out=`` may be
    an operand); without it, any read/write alias overlap is rejected.
    """

    op: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    inplace_ok: bool = False


@dataclass(frozen=True)
class KernelProgram:
    """A lowered sweep as the verifier sees it.

    ``aliases`` lists groups of buffer names known to share memory
    (views, reinterpretations); unlisted buffers are disjoint.
    ``outputs`` names the state buffers whose final contents the caller
    consumes.
    """

    name: str
    buffers: tuple[BufferSpec, ...]
    ops: tuple[BufferOp, ...]
    aliases: tuple[tuple[str, ...], ...] = ()
    outputs: tuple[str, ...] = ()
    meta: dict = field(default_factory=dict, compare=False)

    def spec(self, name: str) -> BufferSpec | None:
        for b in self.buffers:
            if b.name == name:
                return b
        return None

    def describe(self) -> str:
        """One human-readable block per program (CLI ``--verify-kernels``)."""
        kinds: dict[str, int] = {}
        for b in self.buffers:
            kinds[b.kind] = kinds.get(b.kind, 0) + 1
        kind_s = ", ".join(f"{v} {k}" for k, v in sorted(kinds.items()))
        lines = [
            f"program {self.name}: {len(self.ops)} op(s), "
            f"{len(self.buffers)} buffer(s) ({kind_s}), "
            f"outputs: {', '.join(self.outputs) or '-'}"
        ]
        for op in self.ops:
            flag = " [inplace]" if op.inplace_ok else ""
            lines.append(
                f"  {op.op}: reads({', '.join(op.reads) or '-'}) "
                f"-> writes({', '.join(op.writes) or '-'}){flag}"
            )
        return "\n".join(lines)


def _alias_groups(program: KernelProgram) -> dict[str, frozenset[str]]:
    """name → the full set of names sharing its memory (incl. itself)."""
    groups: dict[str, set[str]] = {b.name: {b.name} for b in program.buffers}
    for group in program.aliases:
        merged: set[str] = set()
        for name in group:
            merged |= groups.get(name, {name})
        for name in merged:
            groups[name] = merged
    return {name: frozenset(members) for name, members in groups.items()}


def verify_program(program: KernelProgram) -> None:
    """Static plan-time verification; raises :class:`KernelVerificationError`."""
    problems: list[str] = []

    specs: dict[str, BufferSpec] = {}
    for b in program.buffers:
        if b.name in specs:
            problems.append(f"buffer {b.name!r} declared twice")
        specs[b.name] = b
    for group in program.aliases:
        for name in group:
            if name not in specs:
                problems.append(f"alias group names undeclared buffer {name!r}")
    groups = _alias_groups(program)

    #: per alias set: the name whose write currently owns the memory
    #: (None = untouched initial contents)
    owner: dict[frozenset[str], str] = {}
    written: set[str] = set()

    for i, op in enumerate(program.ops):
        where = f"op[{i}] {op.op!r}"
        names = [*op.reads, *op.writes]
        missing = [n for n in names if n not in specs]
        if missing:
            problems.append(f"{where} references undeclared buffer(s): {missing}")
            continue
        if not op.inplace_ok:
            for r in op.reads:
                for w in op.writes:
                    if r in groups[w]:
                        problems.append(
                            f"{where} reads {r!r} while writing aliased "
                            f"{w!r} without inplace_ok"
                        )
        for r in op.reads:
            group = groups[r]
            current = owner.get(group)
            if current is None:
                if specs[r].kind != "state":
                    problems.append(
                        f"{where} reads {specs[r].kind} buffer {r!r} "
                        "before anything writes it"
                    )
            elif current != r and r not in op.writes:
                problems.append(
                    f"{where} reads {r!r}, but its memory was clobbered "
                    f"through alias {current!r} (write-after-read hazard)"
                )
        for w in op.writes:
            owner[groups[w]] = w
            written.add(w)

    for out in program.outputs:
        if out not in specs:
            problems.append(f"output {out!r} is not a declared buffer")
        elif out not in written:
            problems.append(f"output {out!r} is never written by any op")

    if problems:
        raise KernelVerificationError(program.name, problems)


def check_buffers(
    program: KernelProgram,
    arrays: dict[str, np.ndarray],
    dims: dict[str, int] | None = None,
) -> list[str]:
    """Runtime verification of live arrays against the declared IR.

    Checks dtype, shape (with ``dims`` binding symbolic names like
    ``"n"``/``"m"``/``"b"``) and the alias structure: buffers declared
    disjoint must not share memory, buffers declared aliasing must.
    Returns the list of problems (empty = consistent); only buffers
    present in ``arrays`` are checked.
    """
    dims = dims or {}
    problems: list[str] = []
    groups = _alias_groups(program)

    for name, arr in arrays.items():
        spec = program.spec(name)
        if spec is None:
            problems.append(f"runtime buffer {name!r} is not declared")
            continue
        if np.dtype(spec.dtype) != arr.dtype:
            problems.append(
                f"{name}: dtype {arr.dtype} != declared {spec.dtype}"
            )
        if len(spec.shape) != arr.ndim:
            problems.append(
                f"{name}: rank {arr.ndim} != declared {len(spec.shape)}"
            )
            continue
        for axis, (sym, actual) in enumerate(zip(spec.shape, arr.shape)):
            expected = dims.get(sym)
            if expected is None and sym.isdigit():
                expected = int(sym)
            if expected is not None and actual != expected:
                problems.append(
                    f"{name}: shape[{axis}] = {actual} != declared "
                    f"{sym} (= {expected})"
                )

    names = [n for n in arrays if program.spec(n) is not None]
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            declared = b in groups.get(a, frozenset())
            actual = bool(np.may_share_memory(arrays[a], arrays[b]))
            if declared and not actual:
                problems.append(
                    f"{a!r} and {b!r} declared aliasing but do not share memory"
                )
            elif actual and not declared:
                problems.append(
                    f"{a!r} and {b!r} share memory but are declared disjoint"
                )
    return problems

"""Accuracy ablation — loopy BP vs exact inference (extension).

The paper takes loopy BP's output as the answer ("run until the nodes'
beliefs converge").  This ablation quantifies how close that answer is
to the true marginals (junction-tree exact inference) as the coupling
strength grows — the classic loopy-BP accuracy story: excellent in the
weak-coupling / high-SNR regime, degrading near phase transitions.
Both the paper's literal broadcast rule (Algorithm 1) and standard
sum-product are measured.
"""

import numpy as np
import pytest

from harness import format_table, save_result
from repro.core.convergence import ConvergenceCriterion
from repro.core.junction import junction_tree_marginals
from repro.core.loopy import LoopyBP
from repro.graphs.grids import grid_graph

_CRIT = ConvergenceCriterion(threshold=1e-6, max_iterations=500)


@pytest.fixture(scope="module")
def accuracy_by_coupling():
    rows = []
    for coupling in (0.55, 0.7, 0.85, 0.95):
        g = grid_graph(4, 12, seed=3, coupling=coupling)
        exact = junction_tree_marginals(g)
        sum_prod = LoopyBP(update_rule="sum_product", criterion=_CRIT).run(g.copy())
        broadcast = LoopyBP(update_rule="broadcast", criterion=_CRIT).run(g.copy())
        rows.append(
            (
                coupling,
                float(np.abs(sum_prod.beliefs - exact).max()),
                float(np.abs(broadcast.beliefs - exact).max()),
                sum_prod.iterations,
                broadcast.iterations,
            )
        )
    return rows


def test_accuracy_table(accuracy_by_coupling):
    table = format_table(
        ["coupling", "sum-product max err", "broadcast (Alg.1) max err",
         "sp iters", "bc iters"],
        accuracy_by_coupling,
        title="Accuracy ablation: loopy BP vs junction-tree exact marginals "
        "on a 4x12 grid MRF",
    )
    save_result("EXT_accuracy_vs_exact", table)


def test_sum_product_accurate_at_weak_coupling(accuracy_by_coupling):
    coupling, sp_err, *_ = accuracy_by_coupling[0]
    assert sp_err < 0.02


def test_error_grows_with_coupling(accuracy_by_coupling):
    sp_errs = [row[1] for row in accuracy_by_coupling]
    assert sp_errs[-1] > sp_errs[0]


def test_sum_product_no_worse_than_broadcast(accuracy_by_coupling):
    """Algorithm 1's broadcast rule double-counts the recipient's own
    influence; proper cavity messages can only help."""
    for coupling, sp_err, bc_err, *_ in accuracy_by_coupling:
        assert sp_err <= bc_err + 0.02


def test_benchmark_junction_tree(benchmark):
    g = grid_graph(4, 10, seed=4, coupling=0.7)
    benchmark.pedantic(lambda: junction_tree_marginals(g), rounds=2, iterations=1)

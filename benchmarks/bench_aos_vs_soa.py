"""E5 — §3.4: array-of-structs vs struct-of-arrays belief storage.

The paper profiled both layouts with cachegrind on the synthetic graphs
up to 100k nodes and found "the AoS approach has circa 56% fewer data
cache reads and writes", settling on AoS.

We reproduce the cache-access accounting through the layout-aware cost
model (lines touched per logical access) and check the modeled runtimes
order the same way.
"""

import pytest

from harness import format_table, save_result
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.core.beliefs import AoSBeliefStore, SoABeliefStore
from repro.graphs.suite import build_graph

SUBSET = ["10x40", "100x400", "1kx4k", "10kx40k", "100kx400k"]


def test_cache_access_ratio():
    import numpy as np

    rows = []
    for b in (2, 3, 32):
        dims = np.full(100, b)
        aos = AoSBeliefStore(dims).cache_lines_per_access()
        soa = SoABeliefStore(dims).cache_lines_per_access()
        fewer = 1.0 - aos / soa
        rows.append((b, f"{aos:.2f}", f"{soa:.2f}", f"{fewer:.0%}"))
    table = format_table(
        ["beliefs", "AoS lines/access", "SoA lines/access", "AoS fewer accesses"],
        rows,
        title="E5 (§3.4): cache lines touched per belief access "
        "(paper: AoS has ~56% fewer data cache reads+writes)",
    )
    save_result("E05a_aos_soa_cache", table)
    import numpy as np

    dims = np.full(100, 2)
    fewer = 1.0 - (
        AoSBeliefStore(dims).cache_lines_per_access()
        / SoABeliefStore(dims).cache_lines_per_access()
    )
    assert 0.4 < fewer < 0.7  # the paper's ~56 % band


@pytest.mark.parametrize("paradigm", ["node", "edge"])
def test_aos_faster_modeled(paradigm):
    backend = CNodeBackend() if paradigm == "node" else CEdgeBackend()
    rows = []
    for abbrev in SUBSET:
        g_aos, _ = build_graph(abbrev, "binary", profile="quick", layout="aos")
        g_soa, _ = build_graph(abbrev, "binary", profile="quick", layout="soa")
        t_aos = backend.run(g_aos).modeled_time
        t_soa = backend.run(g_soa).modeled_time
        rows.append((abbrev, t_aos, t_soa, f"{t_soa / t_aos:.2f}x"))
        assert t_aos <= t_soa
    table = format_table(
        ["graph", f"{backend.name} AoS (s)", f"{backend.name} SoA (s)", "SoA/AoS"],
        rows,
        title=f"E5 (§3.4): modeled runtime by layout, {backend.name}",
    )
    save_result(f"E05b_aos_soa_{paradigm}", table)


def test_benchmark_aos_run(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick", layout="aos")
    benchmark.pedantic(lambda: CNodeBackend().run(graph.copy()), rounds=3, iterations=1)


def test_benchmark_soa_run(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick", layout="soa")
    benchmark.pedantic(lambda: CNodeBackend().run(graph.copy()), rounds=3, iterations=1)

"""E5 — §3.4: array-of-structs vs struct-of-arrays belief storage.

The paper profiled both layouts with cachegrind on the synthetic graphs
up to 100k nodes and found "the AoS approach has circa 56% fewer data
cache reads and writes", settling on AoS.

We reproduce the cache-access accounting through the layout-aware cost
model (lines touched per logical access) and check the modeled runtimes
order the same way.  Layout variants come from the registry in
``repro.kernels.layout`` (DESIGN.md §13): each graph is built once and
converted with :func:`with_layout` instead of being rebuilt per layout
toggle, so the study exercises the same conversion path the executor
plans use.
"""

import numpy as np
import pytest

from harness import format_table, save_result
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.core.beliefs import make_store
from repro.graphs.suite import build_graph
from repro.kernels.layout import LAYOUTS, with_layout

SUBSET = ["10x40", "100x400", "1kx4k", "10kx40k", "100kx400k"]


def _lines_per_access(b: int) -> dict[str, float]:
    dims = np.full(100, b)
    return {
        layout: make_store(dims, layout).cache_lines_per_access()
        for layout in LAYOUTS
    }


def test_cache_access_ratio():
    rows = []
    for b in (2, 3, 32):
        lines = _lines_per_access(b)
        fewer = 1.0 - lines["aos"] / lines["soa"]
        rows.append((b, f"{lines['aos']:.2f}", f"{lines['soa']:.2f}", f"{fewer:.0%}"))
    table = format_table(
        ["beliefs", "AoS lines/access", "SoA lines/access", "AoS fewer accesses"],
        rows,
        title="E5 (§3.4): cache lines touched per belief access "
        "(paper: AoS has ~56% fewer data cache reads+writes)",
    )
    save_result("E05a_aos_soa_cache", table)
    fewer = 1.0 - _lines_per_access(2)["aos"] / _lines_per_access(2)["soa"]
    assert 0.4 < fewer < 0.7  # the paper's ~56 % band


@pytest.mark.parametrize("paradigm", ["node", "edge"])
def test_aos_faster_modeled(paradigm):
    backend = CNodeBackend() if paradigm == "node" else CEdgeBackend()
    rows = []
    for abbrev in SUBSET:
        g_aos, _ = build_graph(abbrev, "binary", profile="quick")
        g_soa = with_layout(g_aos, "soa")
        t_aos = backend.run(g_aos).modeled_time
        t_soa = backend.run(g_soa).modeled_time
        rows.append((abbrev, t_aos, t_soa, f"{t_soa / t_aos:.2f}x"))
        assert t_aos <= t_soa
    table = format_table(
        ["graph", f"{backend.name} AoS (s)", f"{backend.name} SoA (s)", "SoA/AoS"],
        rows,
        title=f"E5 (§3.4): modeled runtime by layout, {backend.name}",
    )
    save_result(f"E05b_aos_soa_{paradigm}", table)


def test_layout_conversion_preserves_posteriors():
    """Layout is storage only: converting through every registered layout
    leaves the converged posteriors bitwise unchanged."""
    base, _ = build_graph("100x400", "binary", profile="quick")
    reference = CNodeBackend().run(base.copy()).beliefs
    for layout in LAYOUTS:
        # copy(): with_layout returns the graph itself when the layout
        # already matches, and runs update beliefs in place
        got = CNodeBackend().run(with_layout(base, layout).copy()).beliefs
        np.testing.assert_array_equal(got, reference)


@pytest.mark.parametrize("layout", LAYOUTS)
def test_benchmark_layout_run(benchmark, layout):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    variant = with_layout(graph, layout)
    benchmark.pedantic(
        lambda: CNodeBackend().run(variant.copy()), rounds=3, iterations=1
    )

"""E2 — §2.1.1: original three-phase BP vs loopy by-node / by-edge.

The paper: on the synthetic family, single-threaded, "the non-loopy BP
implementation is 1032x slower than the by-edge version and 44x slower
than the by-node [at] 10kx40k ... widen[ing] to at most 11427x and 379x
for the 2Mx8M benchmark.  The traditional BP approach is on average circa
1014x and 300x slower."

Our control is the same construction (a level-scheduled sequential
engine vs the vectorized loopy kernels); the wall-time ratios land in the
hundreds-to-thousands band and grow with graph size, though the absolute
factors depend on the Python-vs-NumPy gap rather than theirs.
"""

import time

import numpy as np
import pytest

from harness import format_table, geometric_mean, save_result
from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP
from repro.core.tree_bp import TreeBP
from repro.graphs.suite import build_graph

# the synthetic family of §2.1.1, capped where the sequential engine
# stays tractable (the ratio is already saturated well before 2M nodes)
GRAPHS = ["10x40", "100x400", "1kx4k", "10kx40k"]
_CRIT = ConvergenceCriterion(max_iterations=10)


def _wall(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _compare(abbrev: str) -> tuple[float, float, float]:
    graph, _ = build_graph(abbrev, "binary", profile="quick")
    tree_t = _wall(lambda: TreeBP(criterion=_CRIT).run(graph.copy()))
    node_t = _wall(lambda: LoopyBP(paradigm="node", criterion=_CRIT).run(graph.copy()))
    edge_t = _wall(lambda: LoopyBP(paradigm="edge", criterion=_CRIT).run(graph.copy()))
    return tree_t, node_t, edge_t


def test_algorithm_comparison_table():
    rows = []
    edge_ratios, node_ratios = [], []
    for abbrev in GRAPHS:
        tree_t, node_t, edge_t = _compare(abbrev)
        r_edge = tree_t / max(edge_t, 1e-9)
        r_node = tree_t / max(node_t, 1e-9)
        edge_ratios.append(r_edge)
        node_ratios.append(r_node)
        rows.append((abbrev, f"{tree_t:.4f}", f"{node_t:.4f}", f"{edge_t:.4f}",
                     f"{r_edge:.0f}x", f"{r_node:.0f}x"))
    rows.append(("GEOMEAN", "", "", "",
                 f"{geometric_mean(edge_ratios):.0f}x",
                 f"{geometric_mean(node_ratios):.0f}x"))
    table = format_table(
        ["graph", "3-phase BP (s)", "loopy node (s)", "loopy edge (s)",
         "3-phase/edge", "3-phase/node"],
        rows,
        title="E2 (§2.1.1): original BP vs loopy by-node/by-edge "
        "(paper: avg ~1014x and ~300x slower; 1032x/44x at 10kx40k)",
    )
    save_result("E02_algorithm_comparison", table)

    # Shape assertions: the ordered three-phase engine is dramatically
    # slower, the gap grows with size, and by-edge beats by-node where
    # the vectorized sweeps amortize (the largest graphs).
    assert all(r > 20 for r in edge_ratios[2:])
    assert edge_ratios[-1] > edge_ratios[0]
    assert edge_ratios[-1] >= 0.9 * node_ratios[-1]


def test_loopy_faster_than_tree_even_per_iteration():
    graph, _ = build_graph("1kx4k", "binary", profile="quick")
    one = ConvergenceCriterion(max_iterations=1)
    tree_t = _wall(lambda: TreeBP(criterion=one).run(graph.copy()))
    edge_t = _wall(lambda: LoopyBP(paradigm="edge", criterion=one, schedule="sync").run(graph.copy()))
    assert tree_t > 5 * edge_t


def test_benchmark_three_phase_bp(benchmark):
    graph, _ = build_graph("100x400", "binary", profile="quick")
    benchmark.pedantic(
        lambda: TreeBP(criterion=_CRIT).run(graph.copy()), rounds=2, iterations=1
    )


def test_benchmark_loopy_edge(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    result = benchmark.pedantic(
        lambda: LoopyBP(paradigm="edge", criterion=_CRIT).run(graph.copy()),
        rounds=3,
        iterations=1,
    )
    assert result.iterations >= 1


def test_benchmark_loopy_node(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    benchmark.pedantic(
        lambda: LoopyBP(paradigm="node", criterion=_CRIT).run(graph.copy()),
        rounds=3,
        iterations=1,
    )

"""E3 — §2.2: the shared joint-probability-matrix refinement.

The paper: replacing per-edge matrices with one shared matrix yields "a
2x speedup on average with both C and the CUDA Edge implementations" and
"over 25x speedups for the larger graphs" with CUDA Node (whose many
memory accesses hurt most on the GPU), while slashing the graph's memory
footprint.

We measure the modeled-time ratio per backend and the footprint ratio on
the §2.2 micro-benchmark subset.
"""

import numpy as np
import pytest

from harness import format_table, geometric_mean, save_result
from repro.backends.c_backends import CEdgeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.core.graph import BeliefGraph
from repro.core.potentials import PerEdgePotentialStore
from repro.graphs.suite import build_graph
from repro.kernels.layout import LAYOUTS, with_layout

SUBSET = ["10x40", "100x400", "1kx4k", "10kx40k", "100kx400k"]


def _with_per_edge_matrices(graph: BeliefGraph) -> BeliefGraph:
    """Expand the shared matrix into an explicit per-edge stack (the
    pre-refinement representation)."""
    stack = np.ascontiguousarray(graph.potentials.stacked()).copy()
    clone = graph.copy()
    clone.potentials = PerEdgePotentialStore(stack)
    return clone


def test_shared_matrix_footprint():
    rows = []
    for abbrev in SUBSET:
        shared, _ = build_graph(abbrev, "binary", profile="quick")
        per_edge = _with_per_edge_matrices(shared)
        fp_shared = shared.memory_footprint()
        fp_edge = per_edge.memory_footprint()
        ratio = fp_edge["potentials"] / max(fp_shared["potentials"], 1)
        rows.append((abbrev, f"{fp_shared['potentials']:,}",
                     f"{fp_edge['potentials']:,}", f"{ratio:,.0f}x"))
    table = format_table(
        ["graph", "shared potential bytes", "per-edge potential bytes", "reduction"],
        rows,
        title="E3 (§2.2): potential storage, shared vs per-edge "
        "(the paper: per-edge matrices are 'by far the largest amount of "
        "memory consumption')",
    )
    save_result("E03a_shared_matrix_footprint", table)
    # per-edge storage scales with E; shared is constant
    shared, _ = build_graph(SUBSET[-1], "binary", profile="quick")
    assert shared.memory_footprint()["potentials"] < 100
    assert _with_per_edge_matrices(shared).memory_footprint()["potentials"] > 10**6
    # the §2.2 reduction is a potentials story: belief layout (registry in
    # repro.kernels.layout) must not perturb it, while the beliefs entry
    # tracks each layout's true storage (padding included for blocked)
    for layout in LAYOUTS:
        fp = with_layout(shared, layout).memory_footprint()
        assert fp["potentials"] == shared.memory_footprint()["potentials"]
        assert fp["beliefs"] == with_layout(shared, layout).beliefs.nbytes()


def _kernel_time(result) -> float:
    """Modeled time excluding the fixed GPU management costs — the axis
    on which the §2.2 refinement acts (matrix loads inside the kernels)."""
    breakdown = result.detail.get("breakdown")
    if breakdown is None:
        return result.modeled_time
    return max(result.modeled_time - breakdown.allocation - breakdown.transfer, 1e-9)


def test_shared_matrix_speedup_table():
    backends = {
        "c-edge": CEdgeBackend(),
        "cuda-edge": CudaEdgeBackend(),
        "cuda-node": CudaNodeBackend(),
    }
    speedups: dict[str, list[float]] = {name: [] for name in backends}
    rows = []
    for abbrev in SUBSET[2:]:  # the refinement matters from 1k up
        shared, _ = build_graph(abbrev, "binary", profile="quick")
        per_edge = _with_per_edge_matrices(shared)
        row = [abbrev]
        for name, backend in backends.items():
            t_shared = _kernel_time(backend.run(shared.copy()))
            t_per_edge = _per_edge_penalized_time(backend, per_edge)
            ratio = t_per_edge / max(t_shared, 1e-12)
            speedups[name].append(ratio)
            row.append(f"{ratio:.2f}x")
        rows.append(tuple(row))
    rows.append(("GEOMEAN", *(f"{geometric_mean(speedups[n]):.2f}x" for n in backends)))
    table = format_table(
        ["graph", *backends],
        rows,
        title="E3 (§2.2): speedup from the shared joint matrix "
        "(paper: ~2x for C / CUDA Edge, >25x for CUDA Node on large graphs)",
    )
    save_result("E03b_shared_matrix_speedup", table)
    # Shape: everyone gains; CUDA Node gains the most (its per-edge-matrix
    # loads all hit global memory instead of the constant cache, §3.6)
    assert geometric_mean(speedups["c-edge"]) > 1.2
    assert geometric_mean(speedups["cuda-node"]) > geometric_mean(speedups["cuda-edge"])


def _per_edge_penalized_time(backend, per_edge_graph) -> float:
    """Run with the per-edge store and account its extra traffic.

    The numerics are identical; the cost difference is "loading and
    unloading a separate matrix per belief update computation" (§2.2):
    every edge update now fetches its own ``b x b`` matrix from a
    distinct address instead of hitting the shared copy in cache
    (constant memory on the GPU, L1 on the CPU).
    """
    result = backend.run(per_edge_graph.copy())
    b = per_edge_graph.n_states
    stats = result.stats
    if backend.platform == "gpu":
        # constant-cache broadcasts become per-edge global gathers
        from repro.gpusim.memory import random_time

        extra = random_time(backend.device_spec, stats.edges_processed, b * b * 4.0)
        if backend.paradigm == "node":
            # the node kernel re-reads the matrix per gathered in-edge
            # with data-dependent addressing and no warp-level reuse —
            # the paper's >25x case ("the CUDA Node application's many
            # more memory accesses", §2.2)
            extra *= 8.0
        return _kernel_time(result) + extra
    # CPU: one more data-dependent miss per edge update (the matrix),
    # plus the streaming bytes
    extra = stats.edges_processed * 0.35 * 80e-9 * max(1.0, b * b * 4 / 64)
    extra += stats.edges_processed * b * b * 4 / 12e9
    return result.modeled_time + extra


def test_benchmark_shared_run(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    benchmark.pedantic(
        lambda: CEdgeBackend().run(graph.copy()), rounds=3, iterations=1
    )


def test_benchmark_per_edge_run(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    per_edge = _with_per_edge_matrices(graph)
    benchmark.pedantic(
        lambda: CEdgeBackend().run(per_edge.copy()), rounds=3, iterations=1
    )

"""Shared machinery for the experiment benchmarks.

Every experiment (E1–E13, see DESIGN.md) regenerates one table or figure
of the paper as a plain-text table: the same rows/series the paper plots,
with our measured/modeled values next to the paper's reported numbers
where it states them.  Tables are printed and also written to
``benchmarks/results/`` so a ``pytest benchmarks/ --benchmark-only`` run
leaves the full reproduction record on disk (EXPERIMENTS.md indexes it).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

from repro.backends.base import Backend, RunResult
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.core.graph import BeliefGraph
from repro.telemetry import Tracer, get_tracer, use_tracer, write_chrome_trace

RESULTS_DIR = Path(__file__).parent / "results"

#: benchmark-suite profile for the executed experiments; override with
#: REPRO_PROFILE=ci for larger builds or =paper for Table 1 sizes
DEFAULT_PROFILE = os.environ.get("REPRO_PROFILE", "quick")

#: when set, every experiment run inside :func:`trace_session` emits a
#: Chrome trace next to its results table, e.g. ``REPRO_TRACE=1 pytest
#: benchmarks/ --benchmark-only`` → ``benchmarks/results/<name>.trace.json``
TRACE_BENCHMARKS = bool(os.environ.get("REPRO_TRACE"))


@contextmanager
def trace_session(experiment: str, *, enabled: bool | None = None):
    """Scope one experiment under the telemetry tracer.

    ``enabled=None`` follows the ``REPRO_TRACE`` env var.  When active,
    installs a fresh :class:`Tracer` for the block and writes
    ``benchmarks/results/<experiment>.trace.json`` on exit; otherwise the
    null tracer stays in place and the block runs untraced at zero cost.
    Yields the active tracer either way.
    """
    if enabled is None:
        enabled = TRACE_BENCHMARKS
    if not enabled:
        yield get_tracer()
        return
    tracer = Tracer()
    with use_tracer(tracer):
        yield tracer
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.trace.json"
    write_chrome_trace(tracer.events, path)
    print(f"[trace saved to {path}]")


def core_backends(device: str = "gtx1070") -> dict[str, Backend]:
    """The four implementations Credo arbitrates between (§3.7)."""
    return {
        "c-node": CNodeBackend(),
        "c-edge": CEdgeBackend(),
        "cuda-node": CudaNodeBackend(device),
        "cuda-edge": CudaEdgeBackend(device),
    }


def run_core_backends(
    graph: BeliefGraph, device: str = "gtx1070"
) -> dict[str, RunResult]:
    """Execute all four core backends on copies of ``graph``."""
    return {
        name: backend.run(graph.copy())
        for name, backend in core_backends(device).items()
    }


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def save_result(experiment: str, text: str) -> Path:
    """Write an experiment's table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
    return path


def geometric_mean(values: Sequence[float]) -> float:
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))

"""E4 — §3.2.1: input-processor comparison.

The paper's numbers: family-out parses in 162 µs (BIF) / 638 µs
(XML-BIF); a ~1000-node/2000-edge network takes 21 ms (BIF) / 83 ms
(XML-BIF) / 2 ms (MTX); the largest XML-BIF they could hold (100k nodes)
took 8.4 s while MTX parsed a similar graph in 0.28 s.

Shapes asserted: MTX beats BIF beats XML-BIF at every size, by growing
factors; MTX streams (bounded memory) while BIF/XML-BIF must materialize
the whole document.
"""

import time

import numpy as np
import pytest

from harness import format_table, save_result
from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential
from repro.io.bif import parse_bif, write_bif
from repro.io.mtx import read_mtx_graph, write_mtx_graph
from repro.io.network import BayesianNetwork, Cpt, Variable, network_to_belief_graph
from repro.io.xmlbif import parse_xmlbif, write_xmlbif

FAMILY_OUT = """
network family_out { }
variable fo { type discrete [ 2 ] { t, f }; }
variable bp { type discrete [ 2 ] { t, f }; }
variable lo { type discrete [ 2 ] { t, f }; }
variable do { type discrete [ 2 ] { t, f }; }
variable hb { type discrete [ 2 ] { t, f }; }
probability ( fo ) { table 0.15, 0.85; }
probability ( bp ) { table 0.01, 0.99; }
probability ( lo | fo ) { (t) 0.6, 0.4; (f) 0.05, 0.95; }
probability ( do | fo, bp ) {
  (t, t) 0.99, 0.01; (t, f) 0.9, 0.1; (f, t) 0.97, 0.03; (f, f) 0.3, 0.7;
}
probability ( hb | do ) { (t) 0.7, 0.3; (f) 0.01, 0.99; }
"""


def _random_network(n_nodes: int, seed: int = 0) -> BayesianNetwork:
    """A random single-parent-chain Bayesian network of ``n_nodes``
    variables and ``n_nodes − 1`` edges (representable in all formats)."""
    rng = np.random.default_rng(seed)
    net = BayesianNetwork(name=f"synthetic_{n_nodes}")
    for i in range(n_nodes):
        net.add_variable(Variable(f"v{i}", ["a", "b"]))
    net.add_cpt(Cpt("v0", [], np.array([0.4, 0.6])))
    for i in range(1, n_nodes):
        parent = f"v{rng.integers(0, i)}"
        table = rng.dirichlet([2, 2], size=2)
        net.add_cpt(Cpt(f"v{i}", [parent], table))
    return net


def _random_mtx_files(n_nodes: int, n_edges: int, tmp, seed: int = 0):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n_nodes, size=(n_edges, 2))
    graph = BeliefGraph.from_undirected(
        rng.dirichlet([1, 1], size=n_nodes), edges, attractive_potential(2, 0.8)
    )
    node_path, edge_path = tmp / "g.nodes", tmp / "g.edges"
    write_mtx_graph(graph, node_path, edge_path)
    return node_path, edge_path


def _wall(fn, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_parser_comparison_table(tmp_path):
    rows = []
    timings = {}
    # family-out
    xml_src = write_xmlbif(parse_bif(FAMILY_OUT))
    timings["family-out"] = (
        _wall(lambda: parse_bif(FAMILY_OUT)),
        _wall(lambda: parse_xmlbif(xml_src)),
        None,
    )
    # 1000-node networks in all three formats
    net1k = _random_network(1000)
    bif1k, xml1k = write_bif(net1k), write_xmlbif(net1k)
    mtx1k = _random_mtx_files(1000, 2000, tmp_path, seed=1)
    timings["1k nodes"] = (
        _wall(lambda: parse_bif(bif1k)),
        _wall(lambda: parse_xmlbif(xml1k)),
        _wall(lambda: read_mtx_graph(*mtx1k)),
    )
    # 10k: BIF-family formats already struggling; MTX cruises
    net10k = _random_network(10_000)
    bif10k, xml10k = write_bif(net10k), write_xmlbif(net10k)
    mtx10k = _random_mtx_files(10_000, 20_000, tmp_path, seed=2)
    timings["10k nodes"] = (
        _wall(lambda: parse_bif(bif10k), repeats=1),
        _wall(lambda: parse_xmlbif(xml10k), repeats=1),
        _wall(lambda: read_mtx_graph(*mtx10k), repeats=1),
    )
    for name, (bif_t, xml_t, mtx_t) in timings.items():
        rows.append(
            (name,
             f"{bif_t * 1e3:.3f} ms",
             f"{xml_t * 1e3:.3f} ms",
             f"{mtx_t * 1e3:.3f} ms" if mtx_t else "n/a",
             f"{bif_t / mtx_t:.1f}x" if mtx_t else "")
        )
    table = format_table(
        ["network", "BIF parse", "XML-BIF parse", "MTX parse", "BIF/MTX"],
        rows,
        title="E4 (§3.2.1): input processors "
        "(paper: 162us/638us family-out; 21ms/83ms/2ms at 1k nodes; "
        "8.4s XML-BIF vs 0.28s MTX at 100k)",
    )
    save_result("E04_parser_comparison", table)

    # Core shape: the MTX dual-file format wins by an order of magnitude
    # at every size and the gap does not collapse as networks grow.
    # (Deviation from the paper: our BIF parser is pure Python while
    # XML-BIF rides the C-accelerated ElementTree, so BIF and XML-BIF
    # swap places — see EXPERIMENTS.md E4.)
    bif_t, xml_t, mtx_t = timings["1k nodes"]
    assert mtx_t * 5 < min(bif_t, xml_t)
    bif10, xml10, mtx10 = timings["10k nodes"]
    assert mtx10 * 5 < min(bif10, xml10)
    assert bif10 / mtx10 > bif_t / mtx_t * 0.5  # gap does not collapse


def test_mtx_streams_with_bounded_memory(tmp_path):
    """§3.2: MTX is read 'line-by-line ... without loading either fully
    into memory'.  The readers only ever hold one line plus the output
    arrays; BIF/XML-BIF must slurp the document."""
    import tracemalloc

    node_path, edge_path = _random_mtx_files(20_000, 40_000, tmp_path, seed=3)
    file_bytes = node_path.stat().st_size + edge_path.stat().st_size

    tracemalloc.start()
    graph = read_mtx_graph(node_path, edge_path)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    graph_bytes = sum(graph.memory_footprint().values())
    # peak stays within a small multiple of the binary graph — the reader
    # never materializes the text, unlike BIF/XML-BIF which must hold the
    # whole document plus its token/DOM expansion
    assert peak < graph_bytes * 4 + 2**20
    assert file_bytes > 0  # sanity: there was a real file to not-slurp


def test_benchmark_parse_bif_1k(benchmark):
    src = write_bif(_random_network(1000))
    benchmark(parse_bif, src)


def test_benchmark_parse_xmlbif_1k(benchmark):
    src = write_xmlbif(_random_network(1000))
    benchmark(parse_xmlbif, src)


def test_benchmark_parse_mtx_1k(benchmark, tmp_path):
    node_path, edge_path = _random_mtx_files(1000, 2000, tmp_path)
    benchmark(read_mtx_graph, node_path, edge_path)


def test_benchmark_parse_mtx_100k(benchmark, tmp_path):
    """The paper's 100k-node / 400k-edge MTX parse took 0.28 s."""
    node_path, edge_path = _random_mtx_files(100_000, 400_000, tmp_path, seed=4)
    benchmark.pedantic(read_mtx_graph, args=(node_path, edge_path), rounds=2, iterations=1)

"""EXT — compiled sweep kernels: fused executor vs interpreted, wall clock.

The compiled executor (DESIGN.md §13) lowers ``(graph, schedule,
paradigm)`` once at plan time into fused gather–scatter programs that run
full sweeps in natural edge order.  Two claims are measured here at the
bench_fig7 200k×800k scale, real wall clock, sync schedule (the schedule
whose sweeps are all full — where fusion actually engages):

1. **Raw speed** — both single-threaded C backends clear a ≥2× wall-clock
   speedup over the interpreted executor on the same graph.
2. **Bit-exactness** — the posteriors are ``np.array_equal`` to the
   interpreted run and the iteration counts match, because natural edge
   order feeds ``np.bincount`` the same per-destination addition order as
   the CSR traversal, and every fused reduction (column-loop row sums,
   ``np.take`` gathers, scratch-buffer combines) is bitwise identical to
   the numpy reduce it replaces for belief widths up to numpy's pairwise
   block (8).

The work-queue schedule is measured alongside for the record: its
shrinking active sets route through the interpreted fallback, so the
speedup there is expected to be ~1× — that contrast is the design point
(fusion is a full-sweep optimization; partial sweeps keep the shared
kernel functions, which is what makes parity across schedules trivial).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from harness import DEFAULT_PROFILE, format_table, save_result
from repro.backends import CEdgeBackend, CNodeBackend
from repro.graphs.suite import build_graph

GRAPH = "200kx800k"
USE_CASE = "binary"
SPEEDUP_BAR = 2.0  # acceptance: compiled vs interpreted, sync schedule


def _timed_run(backend_cls, graph, schedule, executor):
    start = time.perf_counter()
    result = backend_cls().run(graph, schedule=schedule, executor=executor)
    return time.perf_counter() - start, result


@pytest.fixture(scope="module")
def executor_results():
    rows = []
    for backend_cls in (CNodeBackend, CEdgeBackend):
        for schedule in ("sync", "work_queue"):
            graph, _ = build_graph(GRAPH, USE_CASE, profile=DEFAULT_PROFILE)
            t_interp, r_interp = _timed_run(
                backend_cls, graph.copy(), schedule, "interpreted"
            )
            t_comp, r_comp = _timed_run(
                backend_cls, graph.copy(), schedule, "compiled"
            )
            total = r_comp.stats
            rows.append(
                {
                    "backend": backend_cls.name,
                    "schedule": schedule,
                    "interp_s": t_interp,
                    "compiled_s": t_comp,
                    "speedup": t_interp / t_comp,
                    "iters": r_comp.iterations,
                    "fused": total.fused_launches,
                    "launches": total.kernel_launches,
                    "bitexact": bool(
                        np.array_equal(r_interp.beliefs, r_comp.beliefs)
                    )
                    and r_interp.iterations == r_comp.iterations,
                }
            )
    return rows


def test_compiled_sync_speedup(executor_results):
    """Both C backends ≥2× wall clock under the full-sweep schedule."""
    for row in executor_results:
        if row["schedule"] != "sync":
            continue
        assert row["speedup"] >= SPEEDUP_BAR, row


def test_compiled_posteriors_bitexact(executor_results):
    """Every (backend, schedule) cell is bitwise identical."""
    for row in executor_results:
        assert row["bitexact"], row


def test_compiled_sync_sweeps_fused(executor_results):
    """Under sync, every sweep runs the fused program (fallback count 0)."""
    for row in executor_results:
        if row["schedule"] != "sync":
            continue
        assert row["fused"] > 0, row
        assert row["fused"] <= row["launches"], row


def test_report(executor_results):
    table = format_table(
        [
            "backend",
            "schedule",
            "interpreted s",
            "compiled s",
            "speedup",
            "iters",
            "fused/launches",
            "bitexact",
        ],
        [
            [
                r["backend"],
                r["schedule"],
                r["interp_s"],
                r["compiled_s"],
                f"{r['speedup']:.2f}x",
                r["iters"],
                f"{r['fused']}/{r['launches']}",
                "yes" if r["bitexact"] else "NO",
            ]
            for r in executor_results
        ],
        title=(
            f"EXTc — compiled executor vs interpreted "
            f"({GRAPH}, {USE_CASE}, profile={DEFAULT_PROFILE})"
        ),
    )
    save_result("EXTc_compiled_executor", table)

"""EXT — streaming updates: incremental re-convergence vs full re-runs.

The streaming subsystem (DESIGN.md §15) keeps a converged model resident
and re-converges after each :class:`~repro.stream.delta.GraphDelta` by
warm-starting from the cached posteriors and seeding the schedule with
just the dirty region.  This experiment measures the steady-state update
throughput of that path against the obvious baseline — applying the same
delta and re-running BP from scratch — on a localized-delta workload:
a stream of evidence changes, each touching one or two nodes of a grid.

Two strategies over the identical delta stream:

1. ``full``        — apply the delta, then a cold ``LoopyBP`` run on the
                     mutated graph (what ``credo run`` would do per edit);
2. ``incremental`` — :meth:`IncrementalEngine.apply`, which patches the
                     cached state in place and repopulates only the dirty
                     work queue.

Reported: sustained updates/sec, mean latency per update, and directed
edges swept per update.  The acceptance bar is a >=2x steady-state
throughput win for the incremental path with posterior parity <=1e-6
against the full re-run at every step.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from harness import format_table, save_result, trace_session
from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.graphs.grids import grid_graph
from repro.stream import GraphDelta, IncrementalEngine, apply_delta

GRID = (64, 64)
N_STATES = 2
#: sub-critical coupling: the fixed point is unique, so the warm- and
#: cold-started runs provably chase the same posteriors (stronger
#: couplings are multi-stable — warm and cold starts can land in
#: different symmetry-broken basins and "parity" stops being defined)
COUPLING = 0.6
N_UPDATES = 12
#: all evidence churn confined to this many nodes in one grid corner —
#: the localized-delta regime the incremental path is built for
LOCAL_WINDOW = 16
#: first updates are excluded from throughput (cache warm-up / allocation)
WARMUP = 2
#: float32 warm-start drift bound; single-update parity is ~7e-7, the
#: sequence accumulates a little
PARITY_TOL = 2e-6


def _config() -> LoopyConfig:
    return LoopyConfig(
        schedule="residual",
        criterion=ConvergenceCriterion(threshold=1e-8, max_iterations=500),
    )


def _graph():
    return grid_graph(*GRID, n_states=N_STATES, seed=11, coupling=COUPLING)


def _delta_stream(n_nodes: int) -> list[GraphDelta]:
    """Localized evidence churn: each delta moves one observation
    within a ``LOCAL_WINDOW``-node corner of the grid."""
    window = min(LOCAL_WINDOW, n_nodes)
    rng = np.random.default_rng(7)
    deltas = []
    prev = None
    for _ in range(N_UPDATES):
        node = int(rng.integers(window))
        while node == prev:
            node = int(rng.integers(window))
        delta = GraphDelta()
        if prev is not None:
            delta.release_node(str(prev))
        delta.observe_node(str(node), int(rng.integers(N_STATES)))
        deltas.append(delta)
        prev = node
    return deltas


def _run_full(deltas):
    graph = _graph()
    config = _config()
    times, edges, beliefs = [], [], []
    for delta in deltas:
        t0 = time.perf_counter()
        graph = apply_delta(graph, delta).graph
        result = LoopyBP(config).run(graph)
        times.append(time.perf_counter() - t0)
        edges.append(result.run_stats.total.edges_processed)
        beliefs.append(result.beliefs.copy())
    return {"times": times, "edges": edges, "beliefs": beliefs}


def _run_incremental(deltas):
    engine = IncrementalEngine(_graph(), _config())
    engine.converge()
    times, edges, beliefs, modes = [], [], [], []
    for delta in deltas:
        t0 = time.perf_counter()
        inc = engine.apply(delta)
        times.append(time.perf_counter() - t0)
        edges.append(inc.edges_swept)
        beliefs.append(inc.beliefs.copy())
        modes.append(inc.mode)
    return {"times": times, "edges": edges, "beliefs": beliefs, "modes": modes}


@pytest.fixture(scope="module")
def update_results():
    deltas = _delta_stream(_graph().n_nodes)
    with trace_session("EXT_streaming_updates"):
        return {
            "full": _run_full(deltas),
            "incremental": _run_incremental(deltas),
        }


def _steady_qps(result) -> float:
    steady = result["times"][WARMUP:]
    return len(steady) / sum(steady)


class TestStreamingUpdates:
    def test_posterior_parity_every_update(self, update_results):
        for step, (inc, full) in enumerate(
            zip(update_results["incremental"]["beliefs"],
                update_results["full"]["beliefs"])
        ):
            diff = float(np.abs(inc - full).max())
            assert diff <= PARITY_TOL, (step, diff)

    def test_incremental_stays_incremental(self, update_results):
        modes = update_results["incremental"]["modes"]
        assert all(m == "incremental" for m in modes), modes

    def test_fewer_edges_swept(self, update_results):
        inc = sum(update_results["incremental"]["edges"])
        full = sum(update_results["full"]["edges"])
        assert inc < full, (inc, full)

    def test_throughput_at_least_2x(self, update_results):
        """The acceptance bar: warm-started re-convergence must sustain
        >=2x the update throughput of full re-runs on localized deltas."""
        inc = _steady_qps(update_results["incremental"])
        full = _steady_qps(update_results["full"])
        assert inc >= 2.0 * full, (inc, full)

    def test_report(self, update_results):
        rows = []
        for label in ("full", "incremental"):
            r = update_results[label]
            steady = r["times"][WARMUP:]
            rows.append([
                label,
                _steady_qps(r),
                1000 * sum(steady) / len(steady),
                sum(r["edges"]) / len(r["edges"]),
            ])
        speedup = _steady_qps(update_results["incremental"]) / _steady_qps(
            update_results["full"]
        )
        sweep_ratio = sum(update_results["full"]["edges"]) / max(
            1, sum(update_results["incremental"]["edges"])
        )
        table = format_table(
            ["strategy", "updates/s", "ms/update", "edges swept/update"],
            rows,
            title=(
                "EXT — streaming updates: incremental vs full re-convergence "
                f"({GRID[0]}x{GRID[1]} grid, {N_STATES} states, coupling "
                f"{COUPLING}, {N_UPDATES} evidence deltas confined to a "
                f"{LOCAL_WINDOW}-node corner, residual schedule)"
            ),
        )
        table += (
            f"\nincremental vs full steady-state: {speedup:.2f}x updates/sec, "
            f"{sweep_ratio:.2f}x fewer edges swept"
        )
        save_result("EXT_streaming_updates", table)

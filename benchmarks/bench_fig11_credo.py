"""E12 — Figure 11: execution time of Credo vs always-C-Edge.

The paper's control "use[s] a naive assumption of always choosing the C
Edge implementation"; Credo's classifier dispatch matches it on very
small graphs, starts winning in the >1k middle ground, and from 100k
nodes on "the CUDA aspects of Credo consistently offer noticeably
greater performance", with the switch point moving earlier as belief
counts rise.

Runtimes are the paper-scale analytic estimates (per-graph convergence
probed, hardware modeled — see repro.credo.analytic); selection is the
real trained selector.
"""

import numpy as np
import pytest

from harness import format_table, save_result
from repro.credo.selector import CredoSelector, cuda_pivot_nodes
from repro.graphs.suite import SUITE

# size ladder for the figure's x-axis
LADDER = ["10x40", "100x400", "1kx4k", "10kx40k", "100kx400k",
          "600kx1200k", "1Mx4M", "2Mx8M"]


def _times_for(rows, abbrev: str, use_case: str):
    for row in rows:
        if row.abbrev == abbrev and row.use_case == use_case:
            return row
    return None


def _credo_choice(selector_rows, row):
    """What a trained Credo picks for this variant, via its features."""
    selector = CredoSelector().fit(selector_rows)
    # mimic runner.select with the stored paper-scale features
    n_nodes = row.features[0]
    n_beliefs = row.n_beliefs
    if n_nodes <= 1_000:
        return "c-edge"
    paradigm = str(
        selector.classifier.predict(row.features.reshape(1, -1))[0]
    )
    if n_nodes >= 100_000:
        return f"cuda-{paradigm}"
    platform = "cuda" if n_nodes >= cuda_pivot_nodes(n_beliefs) else "c"
    return f"{platform}-{paradigm}"


@pytest.fixture(scope="module")
def credo_vs_cedge(paper_scale_rows):
    out = {}
    for use_case in ("binary", "virus", "image"):
        series = []
        for abbrev in LADDER:
            row = _times_for(paper_scale_rows, abbrev, use_case)
            if row is None:
                continue
            choice = _credo_choice(paper_scale_rows, row)
            credo_t = row.times.get(choice)
            if credo_t is None:  # classifier picked a VRAM-infeasible CUDA
                choice = row.best_backend
                credo_t = row.times[choice]
            series.append((abbrev, row.features[0], choice,
                           credo_t, row.times["c-edge"]))
        out[use_case] = series
    return out


def test_figure11_table(credo_vs_cedge):
    for use_case, series in credo_vs_cedge.items():
        rows = [
            (abbrev, f"{int(n):,}", choice, credo_t, cedge_t,
             f"{cedge_t / credo_t:.2f}x")
            for abbrev, n, choice, credo_t, cedge_t in series
        ]
        table = format_table(
            ["graph", "nodes", "Credo choice", "Credo (s)", "C Edge (s)", "gain"],
            rows,
            title=f"E12 (Fig. 11): Credo vs always-C-Edge, {use_case} use case "
            "(paper-scale modeled times)",
        )
        save_result(f"E12_fig11_credo_{use_case}", table)


def test_credo_matches_cedge_on_small_graphs(credo_vs_cedge):
    """'For very small graphs, Credo offers little improvement.'"""
    for series in credo_vs_cedge.values():
        for abbrev, n, choice, credo_t, cedge_t in series:
            if n <= 1_000:
                assert choice == "c-edge"
                assert credo_t == pytest.approx(cedge_t)


def test_credo_wins_big_at_scale(credo_vs_cedge):
    """'At 100,000 nodes, the CUDA aspects of Credo consistently offer
    noticeably greater performance.'"""
    for use_case, series in credo_vs_cedge.items():
        large = [
            (choice, cedge_t / credo_t)
            for abbrev, n, choice, credo_t, cedge_t in series
            if n >= 600_000
        ]
        assert large, f"no large graphs in {use_case} series"
        for choice, gain in large:
            assert choice.startswith("cuda-")
            assert gain > 1.5


def test_pivot_moves_earlier_with_beliefs(credo_vs_cedge):
    """Fig. 11: 'the number of beliefs determines where exactly in this
    middle ground that this change occurs'."""

    def first_cuda_nodes(series):
        for abbrev, n, choice, *_ in series:
            if choice.startswith("cuda-"):
                return n
        return float("inf")

    assert first_cuda_nodes(credo_vs_cedge["image"]) <= first_cuda_nodes(
        credo_vs_cedge["binary"]
    )


def test_credo_never_loses_meaningfully(credo_vs_cedge):
    """Selection risk: Credo must never be far slower than the naive
    control, and losses must be confined to the 100k-node rule boundary.
    Exactly there the paper's always-CUDA rule can misfire for
    edge-labelled graphs (the paper's own classifier is ~95 % accurate,
    so it pays the same kind of occasional toll)."""
    for series in credo_vs_cedge.values():
        losses = [
            (abbrev, n, credo_t / cedge_t)
            for abbrev, n, choice, credo_t, cedge_t in series
            if credo_t > cedge_t * 1.1
        ]
        assert len(losses) <= 1, losses
        for abbrev, n, factor in losses:
            assert factor < 3.5, (abbrev, factor)
            # the loss sits at the rule boundary, not in free territory
            assert 50_000 <= n <= 200_000, (abbrev, n)


def test_benchmark_selector_fit_and_dispatch(benchmark, paper_scale_rows):
    def fit_and_select():
        selector = CredoSelector().fit(paper_scale_rows)
        return [
            selector.classifier.predict(r.features.reshape(1, -1))[0]
            for r in paper_scale_rows[:10]
        ]

    benchmark.pedantic(fit_and_select, rounds=2, iterations=1)

"""E9 — Figure 9: impact of the work queues, by implementation.

The paper, with 32 beliefs on the suite minus the VRAM-exceeding TW/OR:
"a slight loss in performance ... for [the] C Edge implementation with
an average reduction of about two percent ... the CUDA equivalent
exhibits an average 1.3x improvement ... Under the Node processing
paradigm, the C version achieves an approximate average 87x compared to
the CUDA implementation's average of just over 82x."

The giant Node-side factors come from the queue cutting tens of
full-graph sweeps down to a trickle of stragglers; the Edge side gains
little because it converges in a few iterations to begin with.  We
reproduce the ordering and magnitudes classwise: Node >> Edge benefit,
C Node ≥ CUDA Node benefit, CUDA Edge > C Edge benefit.
"""

import pytest

from harness import DEFAULT_PROFILE, format_table, geometric_mean, save_result
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.graphs.suite import build_graph

# 32-belief (image) configuration per the paper; modest graphs so the
# b=32 sweeps stay tractable on one core
GRAPHS = ["1kx4k", "10kx40k", "K16"]

BACKENDS = {
    "c-node": CNodeBackend,
    "c-edge": CEdgeBackend,
    "cuda-node": CudaNodeBackend,
    "cuda-edge": CudaEdgeBackend,
}


def _kernel_time(result) -> float:
    breakdown = result.detail.get("breakdown")
    if breakdown is None:
        return result.modeled_time
    return max(result.modeled_time - breakdown.allocation - breakdown.transfer, 1e-9)


@pytest.fixture(scope="module")
def queue_speedups():
    from repro.core.convergence import ConvergenceCriterion

    # cap iterations: the no-queue Node runs otherwise grind through up
    # to 200 full 32-belief sweeps; 60 is enough to expose the queue win
    crit = ConvergenceCriterion(max_iterations=60)
    out: dict[str, list[float]] = {name: [] for name in BACKENDS}
    for abbrev in GRAPHS:
        graph, _ = build_graph(abbrev, "image", profile="smoke")
        for name, cls in BACKENDS.items():
            backend = cls()
            with_q = backend.run(graph.copy(), schedule="work_queue", criterion=crit)
            without_q = backend.run(graph.copy(), schedule="sync", criterion=crit)
            out[name].append(_kernel_time(without_q) / _kernel_time(with_q))
    return out


def test_figure9_table(queue_speedups):
    rows = [
        (name, *(f"{v:.2f}x" for v in values), f"{geometric_mean(values):.2f}x")
        for name, values in queue_speedups.items()
    ]
    table = format_table(
        ["implementation", *GRAPHS, "AVG"],
        rows,
        title="E9 (Fig. 9): work-queue speedup by implementation, 32 beliefs "
        "(paper: C Edge ~0.98x, CUDA Edge ~1.3x, C Node ~87x, CUDA Node ~82x)",
    )
    save_result("E09_fig9_workqueue", table)


def test_small_scale_gains_are_modest_and_safe(queue_speedups):
    """At tens-of-thousands-of-nodes scale the queue is a wash to a mild
    win for every implementation (the paper's C Edge −2 % sits in this
    band); the dramatic factors belong to Table 1 sizes (next test).
    No implementation may be hurt badly by the queue."""
    for name, values in queue_speedups.items():
        gain = geometric_mean(values)
        assert 0.85 < gain < 3.0, (name, gain)


def test_c_node_benefits_at_least_as_much_as_cuda_node(queue_speedups):
    gains = {k: geometric_mean(v) for k, v in queue_speedups.items()}
    # C Node benefits at least as much as CUDA Node (the GPU's queue
    # atomics eat into the win, §4.2)
    assert gains["c-node"] >= 0.8 * gains["cuda-node"]


def test_queue_gains_grow_with_graph_size():
    """The Fig. 9 magnitudes (~87x Node) belong to million-node graphs:
    the global sum criterion scales with n, so without the queue the
    no-queue iteration count — and the queue's win — grows with size.
    The paper-scale analytic model reproduces the growth."""
    from harness import format_table
    from repro.credo.analytic import IterationModel, estimate_backend_times
    from repro.graphs.suite import SUITE

    # a representative 32-belief convergence profile (probe-shaped)
    model = IterationModel(
        node_iterations=16, edge_iterations=9,
        node_queue_activity=6.0, edge_queue_activity=4.5,
        node_decay=0.82, edge_decay=0.7, probe_n=2000,
    )
    rows = []
    gains = []
    for abbrev in ("K17", "GO", "1Mx4M"):
        wq = estimate_backend_times(SUITE[abbrev], 32, model=model, schedule="work_queue")
        nq = estimate_backend_times(SUITE[abbrev], 32, model=model, schedule="sync")
        gain = nq["c-node"] / wq["c-node"]
        gains.append((SUITE[abbrev].n_nodes, gain))
        rows.append((abbrev, f"{SUITE[abbrev].n_nodes:,}", f"{gain:.1f}x",
                     f"{nq['c-edge'] / wq['c-edge']:.1f}x"))
    table = format_table(
        ["graph", "nodes", "C Node queue gain", "C Edge queue gain"],
        rows,
        title="E9b (Fig. 9 at Table 1 sizes): work-queue gains grow with n "
        "(the sum criterion is scale-dependent; the per-element queue is not)",
    )
    save_result("E09b_workqueue_scale", table)
    ordered = sorted(gains)
    assert ordered[-1][1] > ordered[0][1]  # bigger graph, bigger win
    assert ordered[-1][1] > 3.0


def test_benchmark_with_queue(benchmark):
    from repro.core.convergence import ConvergenceCriterion

    crit = ConvergenceCriterion(max_iterations=30)
    graph, _ = build_graph("10kx40k", "image", profile="probe")
    benchmark.pedantic(
        lambda: CNodeBackend().run(graph.copy(), schedule="work_queue", criterion=crit),
        rounds=1, iterations=1,
    )


def test_benchmark_without_queue(benchmark):
    from repro.core.convergence import ConvergenceCriterion

    crit = ConvergenceCriterion(max_iterations=30)
    graph, _ = build_graph("10kx40k", "image", profile="probe")
    benchmark.pedantic(
        lambda: CNodeBackend().run(graph.copy(), schedule="sync", criterion=crit),
        rounds=1, iterations=1,
    )

"""E6 — §2.4: the OpenMP and OpenACC parallelization study.

The paper's findings, all negative:

* OpenMP slows BP down on 131 of 132 benchmarks — average penalties
  ~1.17x (2 threads), ~1.65x (4), ~4.03x (8, hyperthreaded); disabling
  hyperthreading improves them to ~1.1x / ~1.2x;
* the dynamic scheduler "worsened the problem";
* OpenACC manages at best 1.25x (K21, Edge) and usually trails C because
  its convergence check is imprecise (runs drag toward the iteration
  cap) even though per-iteration times can be lower.
"""

import pytest

from harness import format_table, geometric_mean, save_result
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.openacc import OpenACCBackend
from repro.backends.openmp import OpenMPBackend
from repro.graphs.suite import build_graph

SUBSET = ["1kx4k", "10kx40k", "100kx400k", "GO", "K16"]


def _penalties(hyperthreading: bool) -> dict[int, float]:
    out: dict[int, list[float]] = {2: [], 4: [], 8: []}
    for abbrev in SUBSET:
        graph, _ = build_graph(abbrev, "binary", profile="quick")
        serial = CNodeBackend().run(graph.copy()).modeled_time
        for threads in out:
            if not hyperthreading and threads > 4:
                continue
            t = OpenMPBackend(threads=threads, hyperthreading=hyperthreading).run(
                graph.copy()
            ).modeled_time
            out[threads].append(t / serial)
    return {t: geometric_mean(v) for t, v in out.items() if v}


def test_openmp_penalty_table():
    with_ht = _penalties(hyperthreading=True)
    without_ht = _penalties(hyperthreading=False)
    rows = [
        (t, f"{with_ht[t]:.2f}x", f"{without_ht.get(t, float('nan')):.2f}x" if t in without_ht else "-")
        for t in sorted(with_ht)
    ]
    table = format_table(
        ["threads", "penalty (HT on)", "penalty (HT off)"],
        rows,
        title="E6a (§2.4): OpenMP slowdown vs single-threaded C "
        "(paper: 1.17x/1.65x/4.03x with HT; 1.1x/1.2x without)",
    )
    save_result("E06a_openmp_penalties", table)

    # Shapes: every configuration is a slowdown; it worsens with threads;
    # hyperthreading makes it worse at equal thread counts.
    assert 1.0 < with_ht[2] < with_ht[4] < with_ht[8]
    assert with_ht[8] > 2.0  # the hyperthreaded cliff
    assert without_ht[2] < with_ht[2]
    assert without_ht[4] < with_ht[4]


def test_dynamic_scheduler_worse():
    ratios = []
    for abbrev in SUBSET[:3]:
        graph, _ = build_graph(abbrev, "binary", profile="quick")
        static = OpenMPBackend(threads=4, schedule="static").run(graph.copy()).modeled_time
        dynamic = OpenMPBackend(threads=4, schedule="dynamic").run(graph.copy()).modeled_time
        ratios.append(dynamic / static)
    assert all(r > 1.0 for r in ratios)


def test_openacc_table():
    rows = []
    best_speedup = 0.0
    for abbrev in SUBSET:
        graph, _ = build_graph(abbrev, "binary", profile="quick")
        c_edge = CEdgeBackend().run(graph.copy())
        acc = OpenACCBackend(paradigm="edge").run(graph.copy())
        speedup = c_edge.modeled_time / acc.modeled_time
        best_speedup = max(best_speedup, speedup)
        rows.append(
            (abbrev, c_edge.modeled_time, acc.modeled_time,
             c_edge.iterations, acc.iterations, f"{speedup:.2f}x")
        )
    table = format_table(
        ["graph", "C Edge (s)", "OpenACC Edge (s)", "C iters", "ACC iters", "speedup"],
        rows,
        title="E6b (§2.4): OpenACC vs C Edge "
        "(paper: at best 1.25x, usually slower; more iterations from the "
        "imprecise convergence check)",
    )
    save_result("E06b_openacc", table)

    # Shapes: OpenACC never wins big, and its imprecise convergence makes
    # it run at least as many iterations as the C engine.
    assert best_speedup < 2.0
    assert all(row[4] >= row[3] for row in rows)


def test_benchmark_openmp_8_threads(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    benchmark.pedantic(
        lambda: OpenMPBackend(threads=8).run(graph.copy()), rounds=3, iterations=1
    )


def test_benchmark_openacc(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    benchmark.pedantic(
        lambda: OpenACCBackend().run(graph.copy()), rounds=3, iterations=1
    )

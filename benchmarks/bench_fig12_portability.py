"""E13 — §4.4 and Figure 12: portability of the classifier to Volta.

The paper re-runs the suite on a V100 (p3.2xlarge) and evaluates the
GTX 1070-trained random forest against the new ground-truth labels:

* F1 drops from 94.7 % to 72.2 % — Volta's independent thread
  scheduling and cheaper atomics flip some Node labels to Edge;
* "the CUDA Edge implementation surpasses the CUDA Node implementation
  in 8.3% more test cases", though the margins are small (0.27 s vs
  0.30 s averages);
* kernels speed up ~3.2x (Edge) and ~3.8x (Node) over Pascal;
* Credo-vs-C-Edge keeps the Figure 11 shape with faster CUDA segments.
"""

import numpy as np
import pytest

from harness import format_table, geometric_mean, save_result
from repro.ml import RandomForestClassifier, f1_score, train_test_split


def _xy(rows):
    return (
        np.array([r.features for r in rows]),
        np.array([r.label for r in rows]),
    )


def _matched(pascal_rows, volta_rows):
    """Align the two datasets on (abbrev, use_case)."""
    volta_index = {(r.abbrev, r.use_case): r for r in volta_rows}
    pairs = []
    for p in pascal_rows:
        v = volta_index.get((p.abbrev, p.use_case))
        if v is not None:
            pairs.append((p, v))
    return pairs


def test_cross_architecture_f1(paper_scale_rows, volta_rows):
    pairs = _matched(paper_scale_rows, volta_rows)
    Xp, yp = _xy([p for p, _ in pairs])
    yv = np.array([v.label for _, v in pairs])

    # train on Pascal labels (60-40 split as in §4.3), then score the
    # SAME model on the SAME rows against each architecture's ground
    # truth — the difference isolates the porting penalty
    Xtr, Xte, ytr, yte = train_test_split(Xp, yp, test_size=0.4, random_state=0)
    forest = RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0)
    forest.fit(Xtr, ytr)
    predictions = forest.predict(Xp)
    pascal_f1 = f1_score(yp, predictions)
    volta_f1 = f1_score(yv, predictions)
    held_out_f1 = f1_score(yte, forest.predict(Xte))

    flipped = float((yp != yv).mean())
    save_result(
        "E13a_portability_f1",
        "E13a (§4.4): Pascal-trained random forest evaluated on Volta labels\n"
        f"  held-out same-architecture F1    : {held_out_f1:.3f}  (paper: 0.947)\n"
        f"  full-set F1 vs Pascal labels     : {pascal_f1:.3f}\n"
        f"  full-set F1 vs Volta labels      : {volta_f1:.3f}  (paper: 0.722)\n"
        f"  labels flipped by the architecture change: {flipped:.1%} "
        "(paper: Edge overtakes Node in 8.3% more cases)\n"
        "  (our hardware model flips fewer labels than the real Volta did, "
        "so the F1 drop is milder — see EXPERIMENTS.md E13)",
    )
    # Shapes: porting strictly degrades the classifier, but it stays useful
    assert volta_f1 < pascal_f1
    assert volta_f1 > 0.5
    assert 0.0 < flipped < 0.5


def test_edge_gains_share_on_volta(paper_scale_rows, volta_rows):
    pairs = _matched(paper_scale_rows, volta_rows)

    def edge_share(rows):
        labels = [r.label for r in rows]
        return labels.count("edge") / len(labels)

    pascal_share = edge_share([p for p, _ in pairs])
    volta_share = edge_share([v for _, v in pairs])
    save_result(
        "E13b_edge_share",
        f"E13b (§4.4): Edge-label share — Pascal {pascal_share:.1%}, "
        f"Volta {volta_share:.1%} (paper: +8.3 points on Volta)",
    )
    assert volta_share >= pascal_share


def test_volta_kernels_faster(paper_scale_rows, volta_rows):
    """§4.4: Edge ~3.2x and Node ~3.8x faster than Pascal."""
    pairs = _matched(paper_scale_rows, volta_rows)
    node_ratios, edge_ratios = [], []
    for p, v in pairs:
        if "cuda-node" in p.times and "cuda-node" in v.times:
            node_ratios.append(p.times["cuda-node"] / v.times["cuda-node"])
        if "cuda-edge" in p.times and "cuda-edge" in v.times:
            edge_ratios.append(p.times["cuda-edge"] / v.times["cuda-edge"])
    node_gain = geometric_mean(node_ratios)
    edge_gain = geometric_mean(edge_ratios)
    save_result(
        "E13c_volta_speedup",
        f"E13c (§4.4): V100 vs GTX1070 modeled time — CUDA Node {node_gain:.2f}x, "
        "CUDA Edge "
        f"{edge_gain:.2f}x (paper: 3.8x and 3.2x on total runtimes; our model's "
        "totals stay transfer/context-bound so the factors are smaller — "
        "see EXPERIMENTS.md E13)",
    )
    # Shapes: Volta is strictly faster on both paradigms, and the Edge
    # paradigm — whose kernels are atomics-bound — gains more than Node,
    # which is the mechanism that flips labels (§4.4)
    assert node_gain > 1.05
    assert edge_gain > 1.2
    assert edge_gain > node_gain


def test_measurement_noise_widens_the_f1_gap(paper_scale_rows, volta_rows):
    """§4.4's near-tie regime: on the V100 the Node/Edge margins shrink
    to measurement noise (0.27 s vs 0.30 s averages), so measured labels
    are partly coin flips — which is what pushes the paper's ported F1
    down to 72.2 %.  Relabeling our Volta dataset under 15 % lognormal
    runtime jitter reproduces the effect."""
    from repro.credo.training import relabel_with_jitter

    pairs = _matched(paper_scale_rows, volta_rows)
    Xp, yp = _xy([p for p, _ in pairs])
    forest = RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0)
    Xtr, _Xte, ytr, _yte = train_test_split(Xp, yp, test_size=0.4, random_state=0)
    forest.fit(Xtr, ytr)
    predictions = forest.predict(Xp)

    clean_f1 = f1_score(np.array([v.label for _, v in pairs]), predictions)
    noisy_scores = []
    for seed in range(5):
        noisy = relabel_with_jitter([v for _, v in pairs], scale=0.15, seed=seed)
        noisy_scores.append(f1_score(np.array([r.label for r in noisy]), predictions))
    noisy_f1 = float(np.mean(noisy_scores))
    save_result(
        "E13e_noise_sensitivity",
        "E13e (§4.4): cross-architecture F1 under measured-runtime noise\n"
        f"  deterministic Volta labels : {clean_f1:.3f}\n"
        f"  15% runtime jitter (mean of 5 seeds): {noisy_f1:.3f}  "
        "(paper: 0.722 — their labels came from measured near-tie runtimes)",
    )
    assert noisy_f1 < clean_f1
    assert noisy_f1 > 0.5


def test_figure12_credo_vs_cedge_on_volta(volta_rows):
    from repro.credo.selector import CredoSelector, cuda_pivot_nodes

    selector = CredoSelector().fit(volta_rows)
    rows_out = []
    wins = 0
    total = 0
    for row in volta_rows:
        n_nodes = row.features[0]
        if n_nodes <= 1_000:
            choice = "c-edge"
        else:
            paradigm = str(selector.classifier.predict(row.features.reshape(1, -1))[0])
            platform = "cuda" if n_nodes >= cuda_pivot_nodes(row.n_beliefs) else "c"
            choice = f"{platform}-{paradigm}"
        credo_t = row.times.get(choice, row.times[row.best_backend])
        cedge_t = row.times["c-edge"]
        if n_nodes >= 100_000:
            total += 1
            wins += credo_t < cedge_t
        rows_out.append((row.abbrev, row.use_case, choice, credo_t, cedge_t))
    table = format_table(
        ["graph", "use case", "Credo choice", "Credo (s)", "C Edge (s)"],
        rows_out[:30],
        title="E13d (Fig. 12): Credo vs C Edge on the V100 (first 30 variants)",
    )
    save_result("E13d_fig12_credo_volta", table)
    assert total > 0
    assert wins / total > 0.8


def test_benchmark_volta_run(benchmark):
    from repro.backends.cuda_backends import CudaNodeBackend
    from repro.graphs.suite import build_graph

    graph, _ = build_graph("100kx400k", "binary", profile="quick")
    benchmark.pedantic(
        lambda: CudaNodeBackend("v100").run(graph.copy()), rounds=1, iterations=1
    )

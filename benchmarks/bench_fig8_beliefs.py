"""E8 — Figure 8: distribution of GPU speedups by belief count.

The paper's shape: "the speedup for the Node paradigm decreases beyond
... three beliefs.  Yet for Edges, it consistently increases with the
number of beliefs"; at 32 beliefs Node averages ~29x and Edge ~10x on
the K21/LJ/PO class, versus Node's ~120x peak at 3 beliefs.

Totals at small scale are dominated by the fixed GPU context cost, so
the series reported here are **kernel-level speedups** (modeled time
with management subtracted), the quantity whose shape carries the
paper's argument about atomics vs memory loads.  The analytic estimator
reproduces the total-time version at paper scale in E12.
"""

import pytest

from harness import DEFAULT_PROFILE, format_table, geometric_mean, save_result
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.graphs.suite import build_graph

GRAPHS = ["100kx400k", "GO", "K16"]
BELIEFS = {2: "binary", 3: "virus", 32: "image"}


def _kernel_time(result) -> float:
    breakdown = result.detail.get("breakdown")
    if breakdown is None:
        return result.modeled_time
    return max(result.modeled_time - breakdown.allocation - breakdown.transfer, 1e-9)


@pytest.fixture(scope="module")
def speedups_by_beliefs():
    table: dict[int, dict[str, list[float]]] = {}
    for b, use_case in BELIEFS.items():
        # 32-belief sweeps cost b^2 flops per edge; run them at smoke
        # scale so the bench stays minutes, not hours (per-iteration
        # speedups are what the figure compares, and they scale)
        profile = "smoke" if b >= 8 else DEFAULT_PROFILE
        from repro.core.convergence import ConvergenceCriterion

        crit = ConvergenceCriterion(max_iterations=60)
        node_s, edge_s = [], []
        for abbrev in GRAPHS:
            graph, _ = build_graph(abbrev, use_case, profile=profile)
            cn = CNodeBackend().run(graph.copy(), criterion=crit)
            ce = CEdgeBackend().run(graph.copy(), criterion=crit)
            gn = CudaNodeBackend().run(graph.copy(), criterion=crit)
            ge = CudaEdgeBackend().run(graph.copy(), criterion=crit)
            node_s.append(cn.modeled_time / _kernel_time(gn))
            edge_s.append(ce.modeled_time / _kernel_time(ge))
        table[b] = {"node": node_s, "edge": edge_s}
    return table


def test_figure8_table(speedups_by_beliefs):
    rows = []
    for b, series in speedups_by_beliefs.items():
        rows.append(
            (b,
             f"{geometric_mean(series['node']):.1f}x",
             f"{geometric_mean(series['edge']):.1f}x")
        )
    table = format_table(
        ["beliefs", "Node speedup (kernel)", "Edge speedup (kernel)"],
        rows,
        title="E8 (Fig. 8): GPU speedup vs own C counterpart by belief count "
        "(paper: Node peaks at 3 beliefs then decays to ~29x at 32; "
        "Edge rises monotonically to ~10x)",
    )
    save_result("E08_fig8_beliefs", table)


def test_node_speedup_decays_past_three_beliefs(speedups_by_beliefs):
    node = {b: geometric_mean(v["node"]) for b, v in speedups_by_beliefs.items()}
    assert node[32] < node[3]
    assert node[32] < node[2]


def test_edge_speedup_rises_with_beliefs(speedups_by_beliefs):
    edge = {b: geometric_mean(v["edge"]) for b, v in speedups_by_beliefs.items()}
    assert edge[32] > edge[3]
    assert edge[32] > edge[2]


def test_node_dominates_edge_on_gpu_at_low_beliefs(speedups_by_beliefs):
    """§4.1.1: at 2-3 beliefs the Node kernels dwarf the Edge kernels'
    gains (atomics still expensive relative to tiny belief vectors)."""
    low_b = speedups_by_beliefs[3]
    assert geometric_mean(low_b["node"]) > geometric_mean(low_b["edge"])


def test_benchmark_cuda_node_3_beliefs(benchmark):
    graph, _ = build_graph("100kx400k", "virus", profile=DEFAULT_PROFILE)
    benchmark.pedantic(
        lambda: CudaNodeBackend().run(graph.copy()), rounds=1, iterations=1
    )


def test_benchmark_cuda_edge_32_beliefs(benchmark):
    from repro.core.convergence import ConvergenceCriterion

    crit = ConvergenceCriterion(max_iterations=30)
    graph, _ = build_graph("GO", "image", profile="probe")
    benchmark.pedantic(
        lambda: CudaEdgeBackend().run(graph.copy(), criterion=crit),
        rounds=1, iterations=1,
    )

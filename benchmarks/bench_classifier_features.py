"""E10 — Figures 4, 5, 6: the metadata features and tree classifiers.

* Figure 4: covariances among the five features and the Node/Edge label;
* Figure 5: percent contributions (importances) of each feature in the
  tuned random forest;
* Figure 6: a depth-2 decision tree on {n_nodes, nodes/edges ratio}
  alone reaches ~89 % F1;
* §3.7's ablations: dropping skew hurts; PCA preprocessing hurts.
"""

import numpy as np
import pytest

from harness import format_table, save_result
from repro.credo.features import FEATURE_NAMES
from repro.ml import (
    DecisionTreeClassifier,
    PCA,
    RandomForestClassifier,
    StandardScaler,
    cross_val_score,
    f1_score,
    train_test_split,
)


def _xy(rows):
    X = np.array([r.features for r in rows])
    y = np.array([r.label for r in rows])
    return X, y


def test_figure4_covariances(paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    label_num = (y == "node").astype(float)
    data = np.column_stack([X, label_num])
    names = [*FEATURE_NAMES, "label"]
    # correlation matrix (covariances normalized for readability)
    std = data.std(axis=0)
    std[std == 0] = 1.0
    corr = np.cov(data.T) / np.outer(std, std)
    rows = [
        (names[i], *(f"{corr[i, j]:+.2f}" for j in range(len(names))))
        for i in range(len(names))
    ]
    table = format_table(
        ["", *names], rows,
        title="E10a (Fig. 4): correlations among features and the Node/Edge label",
    )
    save_result("E10a_fig4_covariances", table)
    # the label must correlate with size-type features, and no feature
    # pair may be degenerate duplicates (|corr| == 1)
    label_corr = np.abs(corr[-1, :-1])
    assert label_corr.max() > 0.3
    off_diag = corr[:-1, :-1][~np.eye(len(FEATURE_NAMES), dtype=bool)]
    assert (np.abs(off_diag) < 0.999).all()


def test_figure5_feature_importances(paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    forest = RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0)
    forest.fit(X, y)
    rows = sorted(
        zip(FEATURE_NAMES, forest.feature_importances_),
        key=lambda kv: -kv[1],
    )
    table = format_table(
        ["feature", "importance"],
        [(n, f"{v:.1%}") for n, v in rows],
        title="E10b (Fig. 5): percent contributions to the random forest",
    )
    save_result("E10b_fig5_importances", table)
    importances = dict(rows)
    # every feature contributes; size features dominate (§3.7)
    assert all(v >= 0 for v in importances.values())
    assert importances["n_nodes"] + importances["nodes_to_edges"] > 0.3


def test_figure6_depth2_tree(paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    # the paper's two-feature tree: n_nodes + nodes/edges ratio
    X2 = X[:, :2]
    Xtr, Xte, ytr, yte = train_test_split(X2, y, test_size=0.4, random_state=0)
    tree = DecisionTreeClassifier(max_depth=2).fit(Xtr, ytr)
    score = f1_score(yte, tree.predict(Xte))
    text = tree.describe(["n_nodes", "nodes_to_edges"])
    save_result(
        "E10c_fig6_depth2_tree",
        f"E10c (Fig. 6): depth-2 tree on (n_nodes, nodes/edges) — F1 = {score:.3f}\n"
        f"(paper: over 89% F1 with these two features alone)\n\n{text}",
    )
    assert tree.depth() <= 2
    assert score > 0.75  # the two size features alone carry most of it


def test_dropping_skew_hurts(paper_scale_rows):
    """§3.7: 'dropping [skew] actually reduces the quality of the
    resulting classifiers'."""
    X, y = _xy(paper_scale_rows)
    full = cross_val_score(
        lambda: RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0),
        X, y, cv=3, random_state=0,
    ).mean()
    no_skew = cross_val_score(
        lambda: RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0),
        X[:, :4], y, cv=3, random_state=0,
    ).mean()
    save_result(
        "E10d_skew_ablation",
        f"E10d (§3.7): RF 3-fold F1 with all features: {full:.3f}; "
        f"without skew: {no_skew:.3f}",
    )
    assert full >= no_skew - 0.05  # skew never helps being dropped


def test_pca_preprocessing_hurts(paper_scale_rows):
    """§3.7: 'running primary component analysis (PCA) preprocessing on
    these features results in worse F1-score metrics'."""
    X, y = _xy(paper_scale_rows)
    scaled = StandardScaler().fit_transform(X)
    projected = PCA(3).fit_transform(scaled)
    raw = cross_val_score(
        lambda: RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0),
        X, y, cv=3, random_state=0,
    ).mean()
    pca = cross_val_score(
        lambda: RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0),
        projected, y, cv=3, random_state=0,
    ).mean()
    save_result(
        "E10e_pca_ablation",
        f"E10e (§3.7): RF 3-fold F1 on raw features: {raw:.3f}; "
        f"after PCA(3): {pca:.3f}",
    )
    assert raw >= pca - 0.02


def test_benchmark_forest_training(benchmark, paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    benchmark.pedantic(
        lambda: RandomForestClassifier(
            n_estimators=14, max_depth=6, random_state=0
        ).fit(X, y),
        rounds=3,
        iterations=1,
    )

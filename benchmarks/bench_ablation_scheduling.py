"""Ablation — scheduling policies (DESIGN.md §6 extension).

Compares the update-scheduling ladder around the paper's work queue:

1. full synchronous sweeps (no queue);
2. the paper's FIFO unconverged-element queue (§3.5);
3. max-residual priority scheduling (the Gonzalez et al. policy the
   paper's related-work section positions against);
4. damping (a robustness knob the paper does not use).

The quantity compared is *edge updates until convergence* — the
hardware-independent measure of scheduling quality.
"""

import pytest

from harness import format_table, save_result
from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP
from repro.core.residual import ResidualBP
from repro.graphs.suite import build_graph

GRAPHS = ["1kx4k", "GO", "K16"]
_CRIT = ConvergenceCriterion(threshold=1e-3, max_iterations=200)


@pytest.fixture(scope="module")
def scheduling_results():
    out = {}
    for abbrev in GRAPHS:
        graph, _ = build_graph(abbrev, "binary", profile="smoke")
        sweeps = LoopyBP(paradigm="edge", work_queue=False, criterion=_CRIT).run(graph.copy())
        queued = LoopyBP(paradigm="edge", work_queue=True, criterion=_CRIT).run(graph.copy())
        residual = ResidualBP(criterion=_CRIT).run(graph.copy())
        out[abbrev] = {
            "full sweeps": sweeps.run_stats.total.edges_processed,
            "work queue (paper)": queued.run_stats.total.edges_processed,
            "residual priority": residual.updates,
            "_converged": (sweeps.converged, queued.converged, residual.converged),
        }
    return out


def test_scheduling_ablation_table(scheduling_results):
    rows = []
    for abbrev, res in scheduling_results.items():
        rows.append(
            (abbrev,
             f"{res['full sweeps']:,}",
             f"{res['work queue (paper)']:,}",
             f"{res['residual priority']:,}")
        )
    table = format_table(
        ["graph", "full sweeps (edge updates)", "work queue", "residual priority"],
        rows,
        title="Ablation: edge updates until convergence by scheduling policy",
    )
    save_result("EXT_scheduling_ablation", table)
    for res in scheduling_results.values():
        assert all(res["_converged"])
        # the paper's queue beats blind sweeps ...
        assert res["work queue (paper)"] <= res["full sweeps"]


def test_residual_beats_sweeps(scheduling_results):
    for res in scheduling_results.values():
        assert res["residual priority"] < res["full sweeps"]


def test_damping_ablation():
    """Damping trades per-iteration progress for stability; on these
    well-behaved potentials it should not break convergence."""
    graph, _ = build_graph("1kx4k", "binary", profile="smoke")
    rows = []
    for damping in (0.0, 0.25, 0.5):
        result = LoopyBP(damping=damping, criterion=_CRIT).run(graph.copy())
        rows.append((damping, result.iterations, result.converged))
        assert result.converged
    table = format_table(
        ["damping", "iterations", "converged"],
        rows,
        title="Ablation: damping factor vs iterations (node paradigm)",
    )
    save_result("EXT_damping_ablation", table)
    # zero damping converges fastest on attractive, tree-like potentials
    assert rows[0][1] <= rows[-1][1]


def test_benchmark_residual_scheduler(benchmark):
    graph, _ = build_graph("1kx4k", "binary", profile="smoke")
    benchmark.pedantic(
        lambda: ResidualBP(criterion=_CRIT).run(graph.copy()), rounds=2, iterations=1
    )

"""Ablation — scheduling policies (DESIGN.md §6 extension).

Compares the full update-scheduling ladder through the unified driver
(``LoopyBP(schedule=...)``, one code path for every policy):

1. full synchronous sweeps (no queue);
2. the paper's FIFO unconverged-element queue (§3.5);
3. max-residual priority scheduling (the Gonzalez et al. policy the
   paper's related-work section positions against);
4. relaxed priority sampling (Aksenov et al.: near-max order with O(1)
   contention-free queue operations);
plus damping (a robustness knob the paper does not use).

The quantity compared is *edge updates until convergence* — the
hardware-independent measure of scheduling quality.
"""

import pytest

from harness import format_table, save_result
from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP
from repro.core.scheduler import SCHEDULES
from repro.graphs.suite import build_graph

GRAPHS = ["1kx4k", "GO", "K16"]
_CRIT = ConvergenceCriterion(threshold=1e-3, max_iterations=200)

_LABELS = {
    "sync": "full sweeps",
    "work_queue": "work queue (paper)",
    "residual": "residual priority",
    "relaxed": "relaxed priority",
}


@pytest.fixture(scope="module")
def scheduling_results():
    out = {}
    for abbrev in GRAPHS:
        graph, _ = build_graph(abbrev, "binary", profile="smoke")
        per_schedule = {}
        for schedule in SCHEDULES:
            result = LoopyBP(
                paradigm="edge", schedule=schedule, criterion=_CRIT
            ).run(graph.copy())
            per_schedule[schedule] = result
        out[abbrev] = per_schedule
    return out


def test_scheduling_ablation_table(scheduling_results):
    rows = []
    for abbrev, res in scheduling_results.items():
        rows.append(
            (abbrev, *(f"{res[s].updates:,}" for s in SCHEDULES))
        )
    table = format_table(
        ["graph", *(f"{_LABELS[s]} (edge updates)" for s in SCHEDULES)],
        rows,
        title="Ablation: edge updates until convergence by scheduling policy",
    )
    save_result("EXT_scheduling_ablation", table)
    for res in scheduling_results.values():
        assert all(r.converged for r in res.values())
        # the paper's queue beats blind sweeps ...
        assert res["work_queue"].updates <= res["sync"].updates


def test_residual_beats_sweeps(scheduling_results):
    for res in scheduling_results.values():
        assert res["residual"].updates < res["sync"].updates


def test_relaxed_tracks_residual(scheduling_results):
    """Relaxed sampling approximates exact priority order: its update
    count lands between residual and blind sweeps, and its O(1) queue
    operations cost far fewer atomics than the residual heap."""
    rows = []
    for abbrev, res in scheduling_results.items():
        relaxed, residual, sweeps = res["relaxed"], res["residual"], res["sync"]
        rows.append(
            (abbrev,
             f"{relaxed.updates:,}",
             f"{relaxed.updates / residual.updates:.2f}",
             f"{relaxed.run_stats.total.atomic_ops:,}",
             f"{residual.run_stats.total.atomic_ops:,}")
        )
        assert relaxed.updates < sweeps.updates
        assert (
            relaxed.run_stats.total.atomic_ops
            < residual.run_stats.total.atomic_ops
        )
    table = format_table(
        ["graph", "relaxed updates", "vs residual", "relaxed atomics",
         "residual atomics"],
        rows,
        title="Ablation: relaxed priority — updates near residual, atomics far below",
    )
    save_result("EXT_relaxed_scheduling", table)


def test_damping_ablation():
    """Damping trades per-iteration progress for stability; on these
    well-behaved potentials it should not break convergence."""
    graph, _ = build_graph("1kx4k", "binary", profile="smoke")
    rows = []
    for damping in (0.0, 0.25, 0.5):
        result = LoopyBP(damping=damping, criterion=_CRIT).run(graph.copy())
        rows.append((damping, result.iterations, result.converged))
        assert result.converged
    table = format_table(
        ["damping", "iterations", "converged"],
        rows,
        title="Ablation: damping factor vs iterations (node paradigm)",
    )
    save_result("EXT_damping_ablation", table)
    # zero damping converges fastest on attractive, tree-like potentials
    assert rows[0][1] <= rows[-1][1]


def test_benchmark_residual_scheduler(benchmark):
    graph, _ = build_graph("1kx4k", "binary", profile="smoke")
    benchmark.pedantic(
        lambda: LoopyBP(
            paradigm="edge", schedule="residual", criterion=_CRIT
        ).run(graph.copy()),
        rounds=2, iterations=1,
    )

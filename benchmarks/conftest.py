"""Fixtures for the experiment benchmarks."""

import sys
from pathlib import Path

import pytest

# allow `import harness` from sibling benchmark modules
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def profile():
    from harness import DEFAULT_PROFILE

    return DEFAULT_PROFILE


def _rows_for(device: str):
    """Build (or load from the on-disk cache) the §4.3 labelled dataset
    at paper scale.  The convergence probes take a few minutes; set
    REPRO_REFRESH=1 to force a rebuild."""
    import os
    import pickle

    from repro.credo.training import build_training_set_paper_scale

    cache_dir = Path(__file__).parent / ".cache"
    cache_dir.mkdir(exist_ok=True)
    cache = cache_dir / f"rows_{device}.pkl"
    if cache.exists() and not os.environ.get("REPRO_REFRESH"):
        with open(cache, "rb") as fh:
            return pickle.load(fh)
    rows = build_training_set_paper_scale(device)
    with open(cache, "wb") as fh:
        pickle.dump(rows, fh)
    return rows


@pytest.fixture(scope="session")
def paper_scale_rows():
    """The §4.3 labelled dataset (paper-scale analytic times), built once
    and shared by the classifier experiments."""
    return _rows_for("gtx1070")


@pytest.fixture(scope="session")
def volta_rows():
    """The same dataset labelled on the Volta V100 (§4.4)."""
    return _rows_for("v100")

"""EXT — partition scaling: shard-parallel execution vs a single engine.

The sharding layer (DESIGN.md §9) claims three things, each measured
here on a ≥50 k-edge lattice (160×160 grid, 8 states — the §2.2 image
use-case shape, where per-sweep matmuls dominate):

1. **Partitioner quality is measured, not assumed** — the four
   partitioners produce very different cut fractions on the same graph,
   and the locality-aware ones (range / bfs / greedy) cut orders of
   magnitude fewer edges than random hash on a mesh.
2. **Shard-parallel execution scales** — on the bulk-synchronous CPU
   cost model (measured straggler + exchange + barrier, the same
   modeled-time currency every figure reproduction uses), serving a
   query at 4 shards is well over the 1.5× acceptance bar vs 1 shard.
3. **The serving layer inherits the win end-to-end** — a sharded
   ``InferenceServer`` answers the same evidence queries with identical
   posteriors; measured wall-clock throughput is reported alongside for
   the record (this container is single-core, so *wall-clock* thread
   scaling is bounded by hardware, not by the design).
4. **Async execution absorbs skew** (DESIGN.md §12) — on a deliberately
   lopsided 40/20/20/20 partition, lockstep rounds pay the straggler at
   every barrier while the bounded-staleness policy with work stealing
   levels the lanes: its modeled speedup on the *skewed* partition beats
   the lockstep number on the *balanced* one, and the measured
   barrier-idle time collapses by two orders of magnitude.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from harness import format_table, save_result
from repro.backends import get_backend
from repro.core.convergence import ConvergenceCriterion
from repro.graphs.grids import grid_graph
from repro.partition import PARTITIONERS, make_partition, measure_partition
from repro.serve import InferenceServer, ServerConfig

ROWS = COLS = 160
N_STATES = 8
SHARD_COUNTS = (1, 2, 4, 8)
QUERIES = 3
SPEEDUP_BAR = 1.5  # acceptance: 4-shard modeled throughput vs 1-shard


def _graph():
    return grid_graph(ROWS, COLS, n_states=N_STATES, seed=3)


def _criterion():
    return ConvergenceCriterion(threshold=1e-3, max_iterations=40)


@pytest.fixture(scope="module")
def scaling_results():
    graph = _graph()
    assert graph.n_edges >= 50_000  # the acceptance floor

    # -- 1. partitioner quality at k=4 ---------------------------------
    quality = []
    for method in PARTITIONERS:
        t0 = time.perf_counter()
        part = make_partition(graph, 4, method)
        quality.append(
            {
                "method": method,
                "cut": part.cut_fraction,
                "balance": part.balance,
                "seconds": time.perf_counter() - t0,
            }
        )

    # -- 2. modeled shard scaling (the cost-model currency) ------------
    reference = None
    scaling = []
    for k in SHARD_COUNTS:
        backend = get_backend("sharded", n_shards=k, partitioner="bfs")
        result = backend.run(graph.copy(), criterion=_criterion(), schedule="sync")
        if reference is None:
            reference = result
        scaling.append(
            {
                "shards": k,
                "modeled_s": result.modeled_time,
                "speedup": reference.modeled_time / result.modeled_time,
                "cut": result.detail["cut_fraction"],
                "balance": result.detail["shard_balance"],
                "exchange_bytes": result.detail["exchange_bytes"],
                "max_diff": float(
                    np.abs(result.beliefs - reference.beliefs).max()
                ),
            }
        )

    # -- 2b. skewed partition: lockstep vs bounded staleness -----------
    # contiguous 40/20/20/20 bands — low cut, bad balance: the shape
    # that makes bulk-synchronous rounds pay the straggler every barrier
    n = graph.n_nodes
    bounds = np.cumsum([int(n * f) for f in (0.4, 0.2, 0.2)])
    assignment = np.zeros(n, dtype=np.int64)
    assignment[bounds[0]:bounds[1]] = 1
    assignment[bounds[1]:bounds[2]] = 2
    assignment[bounds[2]:] = 3
    skew_part = measure_partition(graph, assignment, method="skew-range")
    skew = []
    for label, kwargs in (
        ("sync (lockstep)", {}),
        ("async k=2, steal 32", {"policy": "async", "staleness": 2,
                                 "steal_factor": 32}),
    ):
        backend = get_backend("sharded", n_shards=4, partitioner="bfs", **kwargs)
        result = backend.run(
            graph.copy(), criterion=_criterion(), schedule="sync",
            partition=skew_part,
        )
        skew.append(
            {
                "policy": label,
                "modeled_s": result.modeled_time,
                "speedup": reference.modeled_time / result.modeled_time,
                "barrier_idle_s": result.detail["barrier_idle_s"],
                "stolen": result.detail.get("stolen_items", 0),
                "max_diff": float(
                    np.abs(result.beliefs - reference.beliefs).max()
                ),
            }
        )

    # -- 3. serve layer end-to-end: 1 shard vs 4 shards ----------------
    serve = {}
    posteriors = {}
    for label, shards in (("serve 1-shard", 1), ("serve 4-shard", 4)):
        config = ServerConfig(
            shards=shards,
            partitioner="bfs",
            backend="c-node",
            schedule="sync",
            threshold=1e-3,
            max_iterations=40,
            cache_capacity=0,  # measure execution, not the cache
            max_batch=1,
        )
        server = InferenceServer(config)
        server.register_model("grid", graph.copy())
        try:
            latencies = []
            answers = []
            for q in range(QUERIES):
                evidence = {str((q * 5261) % graph.n_nodes): q % N_STATES}
                t0 = time.perf_counter()
                response = server.query("grid", evidence)
                latencies.append(time.perf_counter() - t0)
                assert response.ok, response.error
                answers.append(response.posteriors)
            serve[label] = {
                "qps": len(latencies) / sum(latencies),
                "p50_ms": float(np.median(latencies)) * 1000,
            }
            posteriors[label] = answers
        finally:
            server.stop()

    # sharded serving must answer with the same posteriors
    for a, b in zip(posteriors["serve 1-shard"], posteriors["serve 4-shard"]):
        for name in ("0", "12800", "25599"):
            np.testing.assert_allclose(a[name], b[name], atol=1e-6)

    return {
        "quality": quality,
        "scaling": scaling,
        "skew": skew,
        "skew_balance": skew_part.balance,
        "serve": serve,
        "graph": graph,
    }


class TestPartitionScaling:
    def test_locality_partitioners_beat_hash(self, scaling_results):
        by_method = {q["method"]: q["cut"] for q in scaling_results["quality"]}
        # structure-aware placement always beats random hash on a mesh;
        # the contiguity-driven ones (range/bfs) by an order of magnitude,
        # degree-ordered greedy by less (a grid has no degree signal)
        for smart in ("range", "bfs", "greedy"):
            assert by_method[smart] < by_method["hash"] / 2
        for contiguous in ("range", "bfs"):
            assert by_method[contiguous] < by_method["hash"] / 10

    def test_modeled_speedup_clears_the_bar(self, scaling_results):
        """Acceptance: ≥1.5× throughput at 4 shards vs 1 on ≥50k edges."""
        at4 = next(r for r in scaling_results["scaling"] if r["shards"] == 4)
        assert at4["speedup"] >= SPEEDUP_BAR, at4

    def test_sharding_never_changes_posteriors(self, scaling_results):
        for row in scaling_results["scaling"]:
            assert row["max_diff"] <= 1e-6, row

    def test_async_beats_lockstep_on_skew(self, scaling_results):
        """Acceptance: async on the 40/20/20/20 skew beats even the
        *balanced* 4-shard lockstep speedup, with barrier idle collapsing."""
        assert scaling_results["skew_balance"] > 1.5  # genuinely lopsided
        sync_skew, async_skew = scaling_results["skew"]
        at4 = next(r for r in scaling_results["scaling"] if r["shards"] == 4)
        assert async_skew["speedup"] > sync_skew["speedup"]
        assert async_skew["speedup"] > at4["speedup"], (async_skew, at4)
        # no barrier ⇒ the idle time is residual lane imbalance only
        assert async_skew["barrier_idle_s"] < sync_skew["barrier_idle_s"] / 20
        assert async_skew["stolen"] > 0
        assert async_skew["max_diff"] <= 1e-6, async_skew

    def test_report(self, scaling_results):
        g = scaling_results["graph"]
        quality_table = format_table(
            ["partitioner", "cut fraction", "balance", "seconds"],
            [
                [q["method"], q["cut"], q["balance"], q["seconds"]]
                for q in scaling_results["quality"]
            ],
            title=(
                f"EXT — partition scaling ({ROWS}x{COLS} grid, "
                f"{g.n_nodes} nodes, {g.n_edges} directed edges, "
                f"{N_STATES} states)\n\nPartitioner quality at 4 shards:"
            ),
        )
        scaling_table = format_table(
            ["shards", "modeled s/query", "speedup", "cut", "balance",
             "exchange B/query", "max |Δbelief|"],
            [
                [r["shards"], r["modeled_s"], f"{r['speedup']:.2f}x", r["cut"],
                 r["balance"], r["exchange_bytes"], r["max_diff"]]
                for r in scaling_results["scaling"]
            ],
            title="Modeled shard scaling (bfs partitioner, sync schedule):",
        )
        skew_table = format_table(
            ["policy", "modeled s/query", "speedup", "barrier idle s",
             "stolen items", "max |Δbelief|"],
            [
                [r["policy"], r["modeled_s"], f"{r['speedup']:.2f}x",
                 r["barrier_idle_s"], r["stolen"], r["max_diff"]]
                for r in scaling_results["skew"]
            ],
            title=(
                "Skewed 40/20/20/20 partition at 4 shards (balance "
                f"{scaling_results['skew_balance']:.2f}) — lockstep vs "
                "bounded-staleness async (DESIGN.md §12):"
            ),
        )
        serve_table = format_table(
            ["configuration", "queries/s (wall)", "p50 ms"],
            [
                [label, r["qps"], r["p50_ms"]]
                for label, r in scaling_results["serve"].items()
            ],
            title=(
                "Serve layer, measured wall clock (single-core container — "
                "wall scaling is hardware-bound; the modeled table above is "
                "the cost-model currency):"
            ),
        )
        at4 = next(r for r in scaling_results["scaling"] if r["shards"] == 4)
        sync_skew, async_skew = scaling_results["skew"]
        text = "\n\n".join(
            [quality_table, scaling_table, skew_table, serve_table]
        )
        text += (
            f"\n\n4-shard vs 1-shard modeled throughput: {at4['speedup']:.2f}x "
            f"(bar: {SPEEDUP_BAR}x) — posteriors identical to 1e-6."
            f"\nSkewed partition: async {async_skew['speedup']:.2f}x vs "
            f"lockstep {sync_skew['speedup']:.2f}x (balanced lockstep "
            f"{at4['speedup']:.2f}x); barrier idle "
            f"{sync_skew['barrier_idle_s']:.4f}s -> "
            f"{async_skew['barrier_idle_s']:.4f}s."
        )
        save_result("EXT_partition_scaling", text)

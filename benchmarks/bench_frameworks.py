"""E15 — §5.2: GPU graph frameworks vs BP (extension).

The paper grants that Gunrock / nvGRAPH / Groute post "impressive
results" on the classic algorithms but argues "these frameworks cannot
perform complex graph processing on the level of BP" because of the CSR
one-scalar-per-node data model.  This experiment:

1. runs SSSP / BFS / PageRank / components through our frontier and
   semiring frameworks on a suite graph (they work, fast);
2. enumerates and *demonstrates* the structural mismatches that lock BP
   out (``why_not_bp``);
3. confirms the same graph runs fine through Credo.
"""

import numpy as np
import pytest

from harness import format_table, save_result
from repro.backends.c_backends import CEdgeBackend
from repro.frameworks import (
    bfs_depths,
    connected_components,
    pagerank,
    sssp,
    why_not_bp,
)
from repro.frameworks.csr import CsrGraph
from repro.graphs.suite import build_graph


@pytest.fixture(scope="module")
def suite_csr():
    graph, _ = build_graph("GO", "binary", profile="smoke")
    return graph, CsrGraph.from_belief_graph(graph)


def test_frameworks_handle_classic_algorithms(suite_csr):
    import time

    graph, csr = suite_csr
    rows = []
    for name, fn in [
        ("SSSP", lambda: sssp(csr, 0)),
        ("BFS", lambda: bfs_depths(csr, 0)),
        ("PageRank", lambda: pagerank(csr, max_iterations=100)),
        ("Components", lambda: connected_components(csr)),
    ]:
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        rows.append((name, f"{dt * 1e3:.1f} ms", f"{np.asarray(out).shape}"))
    table = format_table(
        ["algorithm", "wall time", "output"],
        rows,
        title="E15a (§5.2): the classic algorithms run cleanly on the "
        "frontier/semiring frameworks",
    )
    save_result("E15a_framework_algorithms", table)
    pr = pagerank(csr, max_iterations=100)
    assert pr.sum() == pytest.approx(1.0)


def test_bp_locked_out_but_credo_runs(suite_csr):
    graph, _csr = suite_csr
    limits = why_not_bp(graph)
    lines = ["E15b (§5.2): why BP does not fit the CSR frameworks", ""]
    for lim in limits:
        lines.append(f"* requirement : {lim.requirement}")
        lines.append(f"  framework   : {lim.framework_assumption}")
        lines.append(f"  demonstrated: {lim.demonstrated_by}")
        lines.append("")
    result = CEdgeBackend().run(graph.copy())
    lines.append(
        f"...while Credo's C Edge runs the same graph in "
        f"{result.modeled_time:.3f}s modeled ({result.iterations} iterations)."
    )
    save_result("E15b_why_not_bp", "\n".join(lines))
    assert len(limits) >= 4
    assert sum("rejected" in l.demonstrated_by for l in limits) >= 2
    assert result.converged


def test_benchmark_framework_pagerank(benchmark, suite_csr):
    _, csr = suite_csr
    benchmark.pedantic(
        lambda: pagerank(csr, max_iterations=50), rounds=2, iterations=1
    )


def test_benchmark_framework_sssp(benchmark, suite_csr):
    _, csr = suite_csr
    benchmark.pedantic(lambda: sssp(csr, 0), rounds=2, iterations=1)

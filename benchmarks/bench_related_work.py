"""E14 — §5.1: the related-work comparison (extension).

The paper contrasts Credo's single-machine times against published BP
systems:

* Ma et al. (40-core pthreads, custom scheduler): ~4 s for a ~4,000-node
  graph — "we can process a similar graph in about 1ms";
* Gonzalez et al. (MapReduce splash BP): ~12 s for a 460,000-node graph —
  Credo "0.7s";
* Gonzalez et al. (40 servers, pthreads+OpenMPI): 6.4 s for a
  58,000-edge graph — Credo "0.06s";
* Kang et al. (MPI, billion-edge scale): "hours to process our benchmark
  graphs" versus Credo's "2-3s", because of "network latencies from the
  frequent message passing inherent to BP".

Each competitor is modeled with the matching execution substrate: the
multithreaded scheduler via the OpenMP backend (dynamic scheduling), the
cluster systems via the distributed backend with MapReduce or MPI
framework overheads.  Credo's side is its best single-machine backend.
"""

import pytest

from harness import format_table, save_result
from repro.backends.c_backends import CEdgeBackend
from repro.backends.cuda_backends import CudaNodeBackend
from repro.backends.distributed import (
    ETHERNET_1G,
    INFINIBAND,
    MAPREDUCE,
    DistributedBackend,
)
from repro.backends.openmp import OpenMPBackend
from repro.graphs.suite import build_graph
from repro.graphs.synthetic import synthetic_graph


def _credo_time(graph) -> float:
    local_edge = CEdgeBackend().run(graph.copy()).modeled_time
    local_cuda = CudaNodeBackend().run(graph.copy()).modeled_time
    return min(local_edge, local_cuda)


@pytest.fixture(scope="module")
def comparison():
    rows = []

    # Ma et al.: 40-thread custom scheduler on one box, ~4k-node graph
    g = synthetic_graph(4_000, 16_000, seed=11)
    competitor = OpenMPBackend(threads=8, schedule="dynamic").run(g.copy()).modeled_time
    rows.append(("Ma et al. (pthreads, 4k nodes)", "4 s", "~1 ms",
                 competitor, _credo_time(g)))

    # Gonzalez et al. MapReduce, ~460k nodes (density-preserved, capped)
    g = synthetic_graph(200_000, 400_000, seed=12)
    competitor = DistributedBackend(MAPREDUCE).run(g.copy()).modeled_time
    rows.append(("Gonzalez et al. (MapReduce, 460k nodes)", "12 s", "0.7 s",
                 competitor, _credo_time(g)))

    # Gonzalez et al. 40 servers + OpenMPI, 58k-edge graph (a 2010-era
    # commodity interconnect; per-edge splash scheduling forces one
    # message per boundary edge per superstep)
    g = synthetic_graph(20_000, 58_000, seed=13)
    competitor = DistributedBackend(
        ETHERNET_1G, messages_per_round=256
    ).run(g.copy()).modeled_time
    rows.append(("Gonzalez et al. (40 servers, 58k edges)", "6.4 s", "0.06 s",
                 competitor, _credo_time(g)))

    # Kang et al. commodity-MPI at our benchmark scale
    g = synthetic_graph(200_000, 800_000, seed=14)
    competitor = DistributedBackend(ETHERNET_1G).run(g.copy()).modeled_time
    rows.append(("Kang et al. (commodity MPI, suite scale)", "hours", "2-3 s",
                 competitor, _credo_time(g)))
    return rows


def test_related_work_table(comparison):
    table = format_table(
        ["setting", "paper: theirs", "paper: Credo",
         "our competitor model (s)", "our Credo (s)", "ratio"],
        [(a, b, c, d, e, f"{d / e:.0f}x") for a, b, c, d, e in comparison],
        title="E14 (§5.1): single-machine Credo vs prior parallel BP systems",
    )
    save_result("E14_related_work", table)


def test_credo_beats_every_prior_system(comparison):
    for label, _pt, _pc, competitor, credo in comparison:
        assert competitor > 3 * credo, label


def test_mapreduce_overhead_is_the_dominant_cost(comparison):
    """Per-iteration job launches dwarf the actual BP math — why splash
    BP on MapReduce took 12 s for a graph Credo does in sub-seconds."""
    label, _pt, _pc, competitor, credo = comparison[1]
    assert competitor > 20 * credo


def test_latency_is_the_mpi_mechanism():
    """§5.1: swap the commodity interconnect for an HPC fabric and the
    gap shrinks — it was the network, not the math."""
    graph = synthetic_graph(50_000, 200_000, seed=15)
    slow = DistributedBackend(ETHERNET_1G).run(graph.copy()).modeled_time
    fast = DistributedBackend(INFINIBAND).run(graph.copy()).modeled_time
    assert slow > 2 * fast


def test_benchmark_distributed_run(benchmark):
    graph, _ = build_graph("10kx40k", "binary", profile="quick")
    benchmark.pedantic(
        lambda: DistributedBackend(ETHERNET_1G).run(graph.copy()),
        rounds=2, iterations=1,
    )

"""E1 — Table 1: the benchmark graph suite.

Regenerates the catalogue table (name, abbreviation, description, nodes,
edges) and verifies the generators actually produce graphs of the
catalogued shape under the active size profile.  The wall-time benchmark
measures suite-graph construction, the first stage of every experiment.
"""

import numpy as np
import pytest

from harness import DEFAULT_PROFILE, format_table, save_result
from repro.graphs.suite import FIGURE_SUBSET, SUITE, build_graph, get_benchmark


def test_table1_catalogue():
    rows = []
    for abbrev, bench in sorted(SUITE.items(), key=lambda kv: kv[1].n_nodes):
        rows.append(
            (
                bench.name,
                abbrev,
                bench.description,
                f"{bench.n_nodes:,}",
                f"{bench.n_edges:,}",
                "bold" if abbrev in FIGURE_SUBSET else "",
            )
        )
    table = format_table(
        ["Name", "Abbrev.", "Description", "# Nodes", "# Edges", "Figure subset"],
        rows,
        title="Table 1: Benchmark Graphs (34 graphs x 3 use cases = 102 variants; "
        "the paper counts 132 with extra belief encodings)",
    )
    save_result("E01_table1_suite", table)
    assert len(SUITE) == 34
    # paper-quoted extremes
    assert get_benchmark("10x40").n_nodes == 10
    assert get_benchmark("TW").n_edges == 265_025_809


@pytest.mark.parametrize("abbrev", ["10x40", "1kx4k", "K16", "GO", "100kx400k"])
def test_generated_shape_matches_catalogue(abbrev):
    bench = get_benchmark(abbrev)
    graph, factor = build_graph(abbrev, "binary", profile=DEFAULT_PROFILE)
    expected_nodes = bench.n_nodes * factor
    assert graph.n_nodes >= 0.9 * expected_nodes
    # directed expansion doubles the undirected count (minus dedup losses)
    assert graph.n_edges <= 2 * bench.n_edges
    if bench.n_nodes > 100:  # tiny graphs saturate (10 nodes cap at 45 edges)
        assert graph.n_edges >= 1.4 * bench.n_edges * factor


def test_degree_shape_distinguishes_kinds():
    """Kronecker/social generators must show the heavy tail the feature
    analysis (Fig. 4) depends on; the synthetic family must not."""
    syn, _ = build_graph("100kx400k", "binary", profile="smoke")
    kron, _ = build_graph("K16", "binary", profile="smoke")
    soc, _ = build_graph("GO", "binary", profile="smoke")
    syn_skew = syn.in_degree().max() / max(syn.in_degree().mean(), 1e-9)
    kron_skew = kron.in_degree().max() / max(kron.in_degree()[kron.in_degree() > 0].mean(), 1e-9)
    soc_skew = soc.in_degree().max() / max(soc.in_degree().mean(), 1e-9)
    assert kron_skew > 4 * syn_skew
    assert soc_skew > 4 * syn_skew


def test_benchmark_build_suite_graph(benchmark):
    """Wall time to materialize a representative suite graph."""
    result = benchmark.pedantic(
        lambda: build_graph("10kx40k", "binary", profile=DEFAULT_PROFILE),
        rounds=3,
        iterations=1,
    )
    graph, _ = result
    assert graph.n_nodes == 10_000


def test_benchmark_build_kronecker(benchmark):
    graph, _ = benchmark.pedantic(
        lambda: build_graph("K16", "binary", profile="smoke"),
        rounds=3,
        iterations=1,
    )
    assert graph.n_edges > 0

"""E11 — §4.3 and Figure 10: classifier comparison and learning curves.

The paper: a tuned depth-2 decision tree reaches 89.5 % F1 on a 60-40
split of the ~95-variant dataset; the tuned random forest (depth 6, 14
trees) reaches 94.7 %.  Figure 10 sweeps the training-set size for seven
classifier families with three-fold cross-validation error bars: the
tree ensembles lead from ~40 samples on, kNN / naive Bayes / SVM trail
(bounded ratio features, interrelated and non-normal), and the
data-hungry MLP / gradient boosting sit in between.
"""

import numpy as np
import pytest

from harness import format_table, save_result
from repro.ml import (
    DecisionTreeClassifier,
    GaussianNBClassifier,
    GaussianProcessClassifier,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearSVMClassifier,
    MLPClassifier,
    RandomForestClassifier,
    StandardScaler,
    cross_val_score,
    f1_score,
    train_test_split,
)
from repro.ml.model_selection import balanced_subsample

CLASSIFIERS = {
    "decision tree (d=2)": lambda: DecisionTreeClassifier(max_depth=2),
    "random forest (d=6, 14)": lambda: RandomForestClassifier(
        n_estimators=14, max_depth=6, random_state=0
    ),
    "kNN (k=5)": lambda: _scaled(KNeighborsClassifier(5)),
    "naive Bayes": lambda: GaussianNBClassifier(),
    "Gaussian process": lambda: _scaled(GaussianProcessClassifier(length_scale=1.5)),
    "linear SVM": lambda: _scaled(LinearSVMClassifier(max_iter=60)),
    "MLP": lambda: _scaled(MLPClassifier(hidden_units=16, max_iter=200, random_state=0)),
    "gradient boosting": lambda: GradientBoostingClassifier(n_estimators=30),
}


class _scaled:
    """Scale features before distance/margin-based models."""

    def __init__(self, model):
        self.model = model
        self.scaler = StandardScaler()

    def fit(self, X, y):
        self.model.fit(self.scaler.fit_transform(X), y)
        return self

    def predict(self, X):
        return self.model.predict(self.scaler.transform(X))


def _xy(rows):
    return (
        np.array([r.features for r in rows]),
        np.array([r.label for r in rows]),
    )


def test_headline_scores(paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.4, random_state=0)
    tree_f1 = f1_score(
        yte, DecisionTreeClassifier(max_depth=2).fit(Xtr, ytr).predict(Xte)
    )
    forest_f1 = f1_score(
        yte,
        RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0)
        .fit(Xtr, ytr)
        .predict(Xte),
    )
    save_result(
        "E11a_headline_f1",
        f"E11a (§4.3): 60-40 split on {len(X)} paper-scale variants\n"
        f"  depth-2 decision tree F1 : {tree_f1:.3f}  (paper: 0.895)\n"
        f"  random forest (6, 14) F1 : {forest_f1:.3f}  (paper: 0.947)",
    )
    assert forest_f1 >= tree_f1 - 0.02  # the ensemble is at least as good
    assert forest_f1 > 0.8
    assert tree_f1 > 0.7


def test_figure10_learning_curves(paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    sizes = [s for s in (24, 40, 60, 80, min(len(X), 95)) if s <= len(X)]
    rows = []
    curves: dict[str, list[float]] = {}
    for name, factory in CLASSIFIERS.items():
        means, stds = [], []
        for size in sizes:
            Xs, ys = balanced_subsample(X, y, size, random_state=1)
            scores = cross_val_score(factory, Xs, ys, cv=3, random_state=0)
            means.append(float(scores.mean()))
            stds.append(float(scores.std()))
        curves[name] = means
        rows.append(
            (name, *(f"{m:.2f}±{s:.2f}" for m, s in zip(means, stds)))
        )
    table = format_table(
        ["classifier", *(f"n={s}" for s in sizes)],
        rows,
        title="E11b (Fig. 10): 3-fold F1 vs training-set size "
        "(paper: tree classifiers reach >=0.80 from ~40 samples)",
    )
    save_result("E11b_fig10_learning_curves", table)

    # Shapes: the tree family leads at the full dataset; scores improve
    # (or hold) as data grows for the leading models.
    full_idx = len(sizes) - 1
    forest_final = curves["random forest (d=6, 14)"][full_idx]
    assert forest_final > 0.8
    assert forest_final >= max(
        curves["naive Bayes"][full_idx],
        curves["kNN (k=5)"][full_idx],
        curves["linear SVM"][full_idx],
    ) - 0.05
    assert curves["random forest (d=6, 14)"][full_idx] >= curves["random forest (d=6, 14)"][0] - 0.05


def test_trees_usable_from_40_samples(paper_scale_rows):
    """Fig. 10: 'the tree-based classifiers need only a dataset of about
    40 elements ... before achieving an F1 score of at least 80%'."""
    X, y = _xy(paper_scale_rows)
    means = []
    for seed in (0, 1, 2):  # average over draws: 40-sample CV is noisy
        Xs, ys = balanced_subsample(X, y, min(40, len(X)), random_state=seed)
        scores = cross_val_score(
            lambda: RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0),
            Xs, ys, cv=3, random_state=0,
        )
        means.append(scores.mean())
    assert np.mean(means) > 0.65


def test_benchmark_cross_validation(benchmark, paper_scale_rows):
    X, y = _xy(paper_scale_rows)
    benchmark.pedantic(
        lambda: cross_val_score(
            lambda: RandomForestClassifier(n_estimators=14, max_depth=6, random_state=0),
            X, y, cv=3, random_state=0,
        ),
        rounds=2,
        iterations=1,
    )

"""EXT — serving throughput: micro-batched BP vs one-shot execution.

The serving layer (DESIGN.md §8) amortizes three costs the one-shot CLI
path pays per query — graph residency, backend/schedule selection, and
the BP sweep itself (coalesced across concurrent queries via the
block-diagonal union graph) — plus an LRU result cache on top.  This
experiment quantifies each rung of that ladder under concurrent load:

1. ``one-shot``          — per query: feature extraction + selection +
                           a solo run on a fresh copy (the ``credo run``
                           execution path, minus file parsing);
2. ``serve unbatched``   — resident graph + frozen plan, ``max_batch=1``,
                           cache off (amortized selection only);
3. ``serve batched``     — micro-batching on, cache off;
4. ``serve batched+cache`` — micro-batching on, queries drawn from a
                           finite evidence pool so the cache can hit.

Reported per client count (1 / 8 / 64): sustained queries/sec and
client-observed latency percentiles (p50/p95/p99).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from harness import format_table, save_result
from repro.graphs.synthetic import synthetic_graph
from repro.serve import InferenceServer, ServerConfig

CLIENTS = (1, 8, 64)
QUERIES_PER_CLIENT = 4
#: finite evidence pool -> repeats under load -> cache hits in config 4
EVIDENCE_POOL = 24

N_NODES, N_EDGES, N_STATES = 150, 450, 3


def _graph():
    return synthetic_graph(N_NODES, N_EDGES, n_states=N_STATES, seed=42)


def _evidence(i: int) -> dict[str, int]:
    j = i % EVIDENCE_POOL
    if j % 5 == 0:
        return {}
    return {str((j * 13) % N_NODES): j % N_STATES, str((j * 29) % N_NODES): (j + 1) % N_STATES}


def _drive(issue, n_clients: int) -> dict[str, float]:
    """Fire ``n_clients`` threads, each issuing QUERIES_PER_CLIENT
    queries through ``issue(query_index)``; returns qps + percentiles."""
    latencies: list[float] = []
    lock = threading.Lock()
    start_gate = threading.Event()

    def client(cid: int):
        start_gate.wait()
        mine = []
        for q in range(QUERIES_PER_CLIENT):
            t0 = time.perf_counter()
            issue(cid * QUERIES_PER_CLIENT + q)
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
    for t in threads:
        t.start()
    wall0 = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall0
    arr = np.asarray(latencies)
    return {
        "qps": len(arr) / wall,
        "p50": float(np.percentile(arr, 50)) * 1000,
        "p95": float(np.percentile(arr, 95)) * 1000,
        "p99": float(np.percentile(arr, 99)) * 1000,
    }


def _serve_config(max_batch: int, cache: int) -> ServerConfig:
    return ServerConfig(
        max_batch=max_batch,
        cache_capacity=cache,
        queue_capacity=512,
        batch_window_s=0.002,
    )


@pytest.fixture(scope="module")
def throughput_results():
    graph = _graph()
    out: dict[str, dict[int, dict[str, float]]] = {}

    # config 1: the one-shot path — selection + solo run per query
    from repro.core.convergence import ConvergenceCriterion
    from repro.core.observation import observe
    from repro.credo.runner import Credo

    credo = Credo(criterion=ConvergenceCriterion(threshold=1e-3, max_iterations=200))
    oneshot_lock = threading.Lock()

    def one_shot(i: int):
        view = graph.copy()
        view.invalidate_metadata_cache()  # one-shot pays feature extraction
        for node, state in _evidence(i).items():
            observe(view, node, state)
        # the selector and backends are single-query engines; serialize
        # like N independent `credo run` invocations on one machine
        with oneshot_lock:
            credo.run(view)

    out["one-shot"] = {n: _drive(one_shot, n) for n in CLIENTS}

    configs = [
        ("serve unbatched", _serve_config(max_batch=1, cache=0)),
        ("serve batched", _serve_config(max_batch=32, cache=0)),
        ("serve batched+cache", _serve_config(max_batch=32, cache=256)),
    ]
    for label, config in configs:
        server = InferenceServer(config)
        server.register_model("g", graph.copy())
        try:
            server.query("g", {})  # warm: first union build / JIT-ish paths
            out[label] = {
                n: _drive(lambda i: server.query("g", _evidence(i)), n)
                for n in CLIENTS
            }
        finally:
            server.stop()
    return out


class TestServingThroughput:
    def test_batched_beats_oneshot_at_64_clients(self, throughput_results):
        """The acceptance bar: coalescing concurrent queries into one
        batched sweep must win on throughput under heavy concurrency."""
        batched = throughput_results["serve batched"][64]["qps"]
        oneshot = throughput_results["one-shot"][64]["qps"]
        assert batched > oneshot, (batched, oneshot)

    def test_cache_at_least_matches_batched(self, throughput_results):
        cached = throughput_results["serve batched+cache"][64]["qps"]
        batched = throughput_results["serve batched"][64]["qps"]
        assert cached > batched * 0.8  # hits should help, never cripple

    def test_report(self, throughput_results):
        rows = []
        for label, by_clients in throughput_results.items():
            for n in CLIENTS:
                r = by_clients[n]
                rows.append(
                    [label, n, r["qps"], r["p50"], r["p95"], r["p99"]]
                )
        speedup = (
            throughput_results["serve batched"][64]["qps"]
            / throughput_results["one-shot"][64]["qps"]
        )
        table = format_table(
            ["configuration", "clients", "queries/s", "p50 ms", "p95 ms", "p99 ms"],
            rows,
            title=(
                "EXT — serving throughput: one-shot vs resident vs micro-batched "
                f"({N_NODES}x{N_EDGES} synthetic, {N_STATES} states, "
                f"{QUERIES_PER_CLIENT} queries/client, evidence pool {EVIDENCE_POOL})"
            ),
        )
        table += (
            f"\nbatched vs one-shot at 64 clients: {speedup:.2f}x queries/sec"
        )
        save_result("EXT_serving_throughput", table)

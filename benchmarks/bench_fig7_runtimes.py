"""E7 — Figure 7: runtimes of the C and CUDA implementations.

The paper plots all four core implementations over the bold Table 1
subset (binary use case) plus the all-benchmark average, and reports:

* CUDA pays off only at ≥ 100k nodes ("Below this threshold, the various
  overheads involved with GPGPU execution ... prohibit" it) — GPU memory
  management is 99.8 % of the smallest benchmark's runtime and ~71 % on
  average for the ≥ 100k graphs;
* CUDA Node reaches ~120x vs C Node on 2Mx8M at 3 beliefs and > 40x on
  K21 / LJ / PO.

This bench executes the figure subset under the active profile, prints
the four series (modeled seconds), and asserts the crossover and the
management-fraction behaviour.  Speedup factors at the full Table 1
sizes are covered by the analytic estimator in E12/E13.
"""

import os

import pytest

from harness import (
    DEFAULT_PROFILE,
    format_table,
    geometric_mean,
    run_core_backends,
    save_result,
    trace_session,
)
from repro.graphs.suite import SUITE, build_graph

# the figure's x-axis, smallest to largest that the profile admits
GRAPHS = ["10x40", "1kx4k", "10kx40k", "100kx400k", "GO", "K16", "200kx800k"]


@pytest.fixture(scope="module")
def figure7_results():
    results = {}
    # REPRO_TRACE=1 additionally emits results/E07_fig7_runtimes.trace.json
    with trace_session("E07_fig7_runtimes"):
        for abbrev in GRAPHS:
            graph, factor = build_graph(abbrev, "binary", profile=DEFAULT_PROFILE)
            results[abbrev] = (graph, factor, run_core_backends(graph))
    return results


def test_figure7_table(figure7_results):
    order = ["c-node", "c-edge", "cuda-node", "cuda-edge"]
    rows = []
    per_backend = {name: [] for name in order}
    for abbrev, (graph, factor, res) in figure7_results.items():
        row = [abbrev, f"{graph.n_nodes:,}", f"{factor:.3g}"]
        for name in order:
            row.append(res[name].modeled_time)
            per_backend[name].append(res[name].modeled_time)
        mgmt = res["cuda-node"].detail["management_fraction"]
        row.append(f"{mgmt:.1%}")
        rows.append(tuple(row))
    rows.append(
        ("AVG (geomean)", "", "",
         *(geometric_mean(per_backend[n]) for n in order), "")
    )
    table = format_table(
        ["graph", "nodes", "scale", *order, "cuda mgmt frac"],
        rows,
        title="E7 (Fig. 7): modeled runtimes of the four core implementations, "
        "binary use case",
    )
    save_result("E07_fig7_runtimes", table)


def test_crossover_at_100k_nodes(figure7_results):
    """CUDA loses below ~100k nodes and wins at/above it (§4.1.1)."""
    for abbrev in ("10x40", "1kx4k", "10kx40k"):
        _, _, res = figure7_results[abbrev]
        assert res["c-node"].modeled_time < res["cuda-node"].modeled_time
        assert res["c-edge"].modeled_time < res["cuda-edge"].modeled_time
    for abbrev in ("100kx400k", "200kx800k"):
        _, factor, res = figure7_results[abbrev]
        if factor < 1.0:
            pytest.skip("profile scaled the >=100k graphs below the threshold")
        assert res["cuda-node"].modeled_time < res["c-node"].modeled_time


def test_management_fraction_shape(figure7_results):
    """99.8 % management on the smallest benchmark, shrinking with size
    but still dominant around 100k (§4.1.1's ~71 % average)."""
    _, _, smallest = figure7_results["10x40"]
    assert smallest["cuda-node"].detail["management_fraction"] > 0.99
    _, _, big = figure7_results["200kx800k"]
    frac = big["cuda-node"].detail["management_fraction"]
    assert frac < 0.99
    assert frac > 0.3


def test_gpu_speedup_grows_with_size(figure7_results):
    ratios = []
    for abbrev in ("10kx40k", "100kx400k", "200kx800k"):
        _, _, res = figure7_results[abbrev]
        ratios.append(res["c-node"].modeled_time / res["cuda-node"].modeled_time)
    assert ratios[0] < ratios[1] < ratios[2]


def test_benchmark_c_node_100k(benchmark):
    graph, _ = build_graph("100kx400k", "binary", profile=DEFAULT_PROFILE)
    benchmark.pedantic(
        lambda: run_core_backends(graph)["c-node"], rounds=1, iterations=1
    )


def test_benchmark_cuda_node_100k(benchmark):
    from repro.backends.cuda_backends import CudaNodeBackend

    graph, _ = build_graph("100kx400k", "binary", profile=DEFAULT_PROFILE)
    benchmark.pedantic(
        lambda: CudaNodeBackend().run(graph.copy()), rounds=1, iterations=1
    )

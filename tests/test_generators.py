"""Workload generators and the Table 1 catalogue."""

import numpy as np
import pytest

from repro.graphs import (
    FIGURE_SUBSET,
    SUITE,
    build_graph,
    get_benchmark,
    grid_edges,
    grid_graph,
    kronecker_graph,
    rmat_edges,
    social_graph,
    synthetic_graph,
)
from repro.graphs.suite import resolve_profile


class TestSynthetic:
    def test_sizes(self):
        g = synthetic_graph(1000, 4000, seed=0)
        assert g.n_nodes == 1000
        # two directed edges per undirected edge, minus dedup/self-loop losses
        assert 2 * 3800 <= g.n_edges <= 2 * 4000

    def test_seeded_determinism(self):
        g1 = synthetic_graph(100, 400, seed=7)
        g2 = synthetic_graph(100, 400, seed=7)
        np.testing.assert_array_equal(g1.src, g2.src)
        np.testing.assert_allclose(g1.priors.dense(), g2.priors.dense())

    def test_states_parameter(self):
        g = synthetic_graph(50, 200, n_states=3, seed=1)
        assert g.n_states == 3

    def test_random_potential_mode(self):
        g = synthetic_graph(50, 200, coupling=None, seed=2)
        assert g.n_edges > 0


class TestKronecker:
    def test_id_space_is_power_of_two(self):
        g = kronecker_graph(10, 5000, seed=0)
        assert g.n_nodes == 1024

    def test_heavy_tailed_degrees(self):
        edges = rmat_edges(12, 40_000, np.random.default_rng(0))
        deg = np.bincount(edges.reshape(-1), minlength=1 << 12)
        # R-MAT: the max degree dwarfs the mean (core-periphery shape)
        assert deg.max() > 20 * max(deg[deg > 0].mean(), 1)

    def test_bad_seed_matrix(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_edges(4, 10, np.random.default_rng(0), seed_matrix=(0.5, 0.5, 0.5, 0.5))


class TestSocial:
    def test_power_law_ish(self):
        g = social_graph(2000, 8000, seed=0)
        deg = g.in_degree()
        assert deg.max() > 8 * deg.mean()

    def test_connected(self):
        g = social_graph(500, 1500, seed=1)
        # preferential attachment attaches every node: no isolated vertices
        assert (g.in_degree() + g.out_degree() > 0).all()


class TestGrids:
    def test_edge_count(self):
        edges = grid_edges(4, 5)
        # 4*(5-1) horizontal + (4-1)*5 vertical
        assert len(edges) == 4 * 4 + 3 * 5

    def test_interior_degree_four(self):
        g = grid_graph(5, 5, seed=0)
        centre = 2 * 5 + 2
        assert len(g.parents(centre)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_edges(0, 5)


class TestSuiteCatalogue:
    def test_34_graphs(self):
        assert len(SUITE) == 34

    def test_paper_sizes_recorded(self):
        tw = get_benchmark("TW")
        assert tw.n_nodes == 21_297_772 and tw.n_edges == 265_025_809
        assert get_benchmark("2Mx8M").n_nodes == 2_000_000

    def test_figure_subset_members_exist(self):
        for abbrev in FIGURE_SUBSET:
            get_benchmark(abbrev)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("XX")

    def test_scaling_preserves_density(self):
        bench = get_benchmark("2Mx8M")
        n, m, factor = bench.scaled(200_000, 800_000)
        assert factor == pytest.approx(0.1)
        assert m / n == pytest.approx(bench.n_edges / bench.n_nodes, rel=0.01)

    def test_profiles(self):
        name, max_n, _ = resolve_profile("quick")
        assert name == "quick" and max_n == 200_000
        with pytest.raises(KeyError):
            resolve_profile("huge")

    def test_profile_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert resolve_profile()[0] == "smoke"

    @pytest.mark.parametrize("use_case,beliefs", [("binary", 2), ("virus", 3), ("image", 32)])
    def test_build_graph_use_cases(self, use_case, beliefs):
        g, factor = build_graph("10x40", use_case, profile="smoke")
        assert g.n_states == beliefs
        assert factor == 1.0

    def test_build_graph_scales_large(self):
        g, factor = build_graph("2Mx8M", "binary", profile="smoke")
        assert factor < 1.0
        assert g.n_nodes <= 20_000

    def test_unknown_use_case(self):
        with pytest.raises(KeyError, match="use case"):
            build_graph("10x40", "weather", profile="smoke")

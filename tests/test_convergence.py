"""Convergence criterion (paper Algorithm 1 line 12, §4)."""

import numpy as np
import pytest

from repro.core.convergence import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_THRESHOLD,
    ConvergenceCriterion,
    belief_delta,
    per_node_delta,
)


class TestDeltas:
    def test_belief_delta_is_total_l1(self):
        prev = np.array([[0.5, 0.5], [1.0, 0.0]])
        curr = np.array([[0.4, 0.6], [1.0, 0.0]])
        assert belief_delta(prev, curr) == pytest.approx(0.2)

    def test_per_node_delta(self):
        prev = np.array([[0.5, 0.5], [1.0, 0.0]])
        curr = np.array([[0.4, 0.6], [0.9, 0.1]])
        np.testing.assert_allclose(per_node_delta(prev, curr), [0.2, 0.2])

    def test_zero_on_identical(self):
        x = np.random.default_rng(0).random((5, 3))
        assert belief_delta(x, x) == 0.0


class TestCriterion:
    def test_paper_defaults(self):
        crit = ConvergenceCriterion()
        assert crit.threshold == DEFAULT_THRESHOLD == 1e-3
        assert crit.max_iterations == DEFAULT_MAX_ITERATIONS == 200

    def test_is_converged_strictly_below(self):
        crit = ConvergenceCriterion(threshold=0.01)
        assert crit.is_converged(0.009)
        assert not crit.is_converged(0.01)

    def test_should_stop_on_cap(self):
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=10)
        assert crit.should_stop(1.0, 10)
        assert not crit.should_stop(1.0, 9)

    def test_slack_shrinks_effective_threshold(self):
        """The OpenACC imprecision (§2.4) makes convergence harder."""
        exact = ConvergenceCriterion(threshold=1e-3)
        sloppy = ConvergenceCriterion(threshold=1e-3, slack=4.0)
        assert sloppy.effective_threshold() < exact.effective_threshold()
        delta = 0.5e-3
        assert exact.is_converged(delta)
        assert not sloppy.is_converged(delta)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0.0},
            {"threshold": -1.0},
            {"max_iterations": 0},
            {"slack": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConvergenceCriterion(**kwargs)

"""The brute-force oracle itself."""

import numpy as np
import pytest

from repro.core.exact import exact_log_partition, exact_marginals
from repro.core.graph import BeliefGraph
from repro.core.observation import observe
from repro.core.potentials import attractive_potential


def _two_node_graph(p0, p1, psi):
    return BeliefGraph.from_undirected(
        np.array([p0, p1]), np.array([[0, 1]]), np.asarray(psi, dtype=np.float32)
    )


class TestExactMarginals:
    def test_hand_computed_two_node_chain(self):
        # p(x0,x1) ∝ p0(x0) p1(x1) ψ(x0,x1), fully hand-checkable
        p0, p1 = [0.6, 0.4], [0.5, 0.5]
        psi = [[0.9, 0.1], [0.1, 0.9]]
        joint = np.zeros((2, 2))
        for a in range(2):
            for b in range(2):
                joint[a, b] = p0[a] * p1[b] * psi[a][b]
        joint /= joint.sum()
        marg = exact_marginals(_two_node_graph(p0, p1, psi))
        np.testing.assert_allclose(marg[0], joint.sum(axis=1), atol=1e-6)
        np.testing.assert_allclose(marg[1], joint.sum(axis=0), atol=1e-6)

    def test_independent_nodes_keep_priors(self):
        g = BeliefGraph.from_undirected(
            np.array([[0.3, 0.7], [0.9, 0.1]]),
            np.empty((0, 2), dtype=np.int64),
            attractive_potential(2, 0.8),
        )
        marg = exact_marginals(g)
        np.testing.assert_allclose(marg, [[0.3, 0.7], [0.9, 0.1]], atol=1e-6)

    def test_marginals_normalized(self):
        rng = np.random.default_rng(0)
        g = BeliefGraph.from_undirected(
            rng.dirichlet([1, 1, 1], size=5),
            rng.integers(0, 5, size=(6, 2)),
            attractive_potential(3, 0.6),
        )
        marg = exact_marginals(g)
        np.testing.assert_allclose(marg.sum(axis=1), 1.0, atol=1e-9)

    def test_observation_restricts_support(self):
        g = _two_node_graph([0.6, 0.4], [0.5, 0.5], [[0.9, 0.1], [0.1, 0.9]])
        observe(g, 0, 1)
        marg = exact_marginals(g)
        np.testing.assert_allclose(marg[0], [0.0, 1.0], atol=1e-6)
        # posterior of node 1 given x0=1: ∝ p1 * ψ[1, :]
        expected = np.array([0.5 * 0.1, 0.5 * 0.9])
        np.testing.assert_allclose(marg[1], expected / expected.sum(), atol=1e-6)

    def test_too_large_raises(self):
        rng = np.random.default_rng(0)
        g = BeliefGraph.from_undirected(
            rng.dirichlet([1, 1], size=40),
            rng.integers(0, 40, size=(50, 2)),
            attractive_potential(2, 0.7),
        )
        with pytest.raises(ValueError, match="too large"):
            exact_marginals(g)


class TestLogPartition:
    def test_independent_nodes_log_z_zero(self):
        # normalized priors, no factors: Z = 1
        g = BeliefGraph.from_undirected(
            np.array([[0.3, 0.7], [0.9, 0.1]]),
            np.empty((0, 2), dtype=np.int64),
            attractive_potential(2, 0.8),
        )
        assert abs(exact_log_partition(g)) < 1e-6  # float32 prior rounding

    def test_matches_manual_sum(self):
        p0, p1 = [0.6, 0.4], [0.5, 0.5]
        psi = [[0.9, 0.1], [0.1, 0.9]]
        z = sum(
            p0[a] * p1[b] * psi[a][b] for a in range(2) for b in range(2)
        )
        g = _two_node_graph(p0, p1, psi)
        np.testing.assert_allclose(exact_log_partition(g), np.log(z), atol=1e-6)

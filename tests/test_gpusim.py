"""The GPU cost-model simulator (paper §2.3, §3.6, §4.4)."""

import numpy as np
import pytest

from repro.core.sweepstats import SweepStats
from repro.gpusim import (
    A100,
    GTX1070,
    V100,
    GpuDevice,
    GpuOutOfMemoryError,
    atomic_cost,
    get_device,
    launch_cost,
    transfer_time,
)
from repro.gpusim.memory import MemoryTracker, random_time, sequential_time


class TestSpecs:
    def test_paper_quoted_numbers(self):
        # "15 SMX processors, a total of 1920 CUDA cores and 8GB of VRAM"
        assert GTX1070.sm_count == 15
        assert GTX1070.total_cores == 1920
        assert GTX1070.vram_bytes == 8 * 1024**3
        # "5120 CUDA cores ... 16GB"
        assert V100.total_cores == 5120
        assert V100.vram_bytes == 16 * 1024**3

    def test_volta_bandwidth_1_5x_pascal(self):
        # §4.4: "a considerably 1.5x higher memory bandwidth over Pascal"
        assert V100.mem_bandwidth / GTX1070.mem_bandwidth == pytest.approx(1.5)

    def test_volta_atomics_cheaper(self):
        assert V100.atomic_base_cycles < GTX1070.atomic_base_cycles
        assert V100.atomic_serialize_cycles < GTX1070.atomic_serialize_cycles
        assert V100.independent_thread_scheduling
        assert not GTX1070.independent_thread_scheduling

    def test_lookup_by_alias(self):
        assert get_device("pascal") is GTX1070
        assert get_device("volta") is V100
        assert get_device(A100) is A100
        with pytest.raises(KeyError):
            get_device("tpu")


class TestMemoryTracker:
    def test_alloc_free(self):
        mem = MemoryTracker(1000)
        mem.alloc("a", 600)
        assert mem.in_use == 600
        mem.free("a")
        assert mem.in_use == 0

    def test_oom(self):
        mem = MemoryTracker(1000)
        mem.alloc("a", 600)
        with pytest.raises(GpuOutOfMemoryError):
            mem.alloc("b", 500)

    def test_duplicate_name(self):
        mem = MemoryTracker(1000)
        mem.alloc("a", 10)
        with pytest.raises(ValueError, match="already exists"):
            mem.alloc("a", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            MemoryTracker(10).free("ghost")

    def test_peak_tracked(self):
        mem = MemoryTracker(1000)
        mem.alloc("a", 700)
        mem.free("a")
        mem.alloc("b", 100)
        assert mem.peak == 700


class TestAccessModels:
    def test_sequential_is_bandwidth_bound(self):
        assert sequential_time(GTX1070, int(GTX1070.mem_bandwidth)) == pytest.approx(1.0)

    def test_random_pays_sector_granularity(self):
        # 8-byte gathers each burn a full 32-byte sector: 4x waste
        t_small = random_time(GTX1070, 1000, 8.0)
        t_exact = random_time(GTX1070, 1000, 32.0)
        assert t_small == pytest.approx(t_exact)
        # 128-byte gathers coalesce into 4 sectors, no waste
        t_big = random_time(GTX1070, 1000, 128.0)
        assert t_big == pytest.approx(4 * t_exact)

    def test_transfer_latency_plus_bandwidth(self):
        t = transfer_time(GTX1070, int(GTX1070.pcie_bandwidth), calls=1)
        assert t == pytest.approx(1.0 + GTX1070.pcie_latency_seconds)
        assert transfer_time(GTX1070, 0, calls=2) == pytest.approx(
            2 * GTX1070.pcie_latency_seconds
        )

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            transfer_time(GTX1070, -1)
        with pytest.raises(ValueError):
            transfer_time(GTX1070, 0, calls=0)


class TestAtomics:
    def test_zero_atomics_cost_nothing(self):
        assert atomic_cost(GTX1070, 0, 1) == 0.0

    def test_contention_increases_cost(self):
        spread = atomic_cost(GTX1070, 10_000, 10_000)
        contended = atomic_cost(GTX1070, 10_000, 100)
        assert contended > spread

    def test_contention_saturates(self):
        c1 = atomic_cost(GTX1070, 10_000, 10)
        c2 = atomic_cost(GTX1070, 10_000, 1)
        assert c2 == pytest.approx(c1)  # capped serialization depth

    def test_volta_atomics_faster_than_pascal(self):
        """§4.4: the very effect that promotes CUDA Edge on Volta."""
        p = atomic_cost(GTX1070, 1_000_000, 100_000)
        v = atomic_cost(V100, 1_000_000, 100_000)
        assert v < p / 3


class TestKernelCost:
    def _stats(self, **kw):
        base = dict(
            nodes_processed=100_000,
            edges_processed=400_000,
            flops=400_000 * 12,
            sequential_bytes=400_000 * 24,
            random_bytes=400_000 * 16,
            random_accesses=800_000,
            atomic_ops=0,
            reduction_elems=100_000,
            kernel_launches=1,
        )
        base.update(kw)
        return SweepStats(**base)

    def test_total_is_roofline_sum(self):
        cost = launch_cost(GTX1070, self._stats())
        assert cost.total == pytest.approx(
            cost.launch + max(cost.compute, cost.memory) + cost.atomics + cost.reduction
        )

    def test_atomics_add_cost(self):
        plain = launch_cost(GTX1070, self._stats())
        atomic = launch_cost(GTX1070, self._stats(atomic_ops=400_000))
        assert atomic.total > plain.total

    def test_small_kernels_latency_dominated(self):
        tiny = launch_cost(GTX1070, self._stats(nodes_processed=10, edges_processed=40,
                                                flops=480, sequential_bytes=960,
                                                random_bytes=640, random_accesses=80,
                                                reduction_elems=10))
        # launch + exposed latency dwarf the actual work
        assert tiny.launch + tiny.memory > 100 * tiny.compute

    def test_wide_beliefs_reduce_occupancy(self):
        narrow = launch_cost(GTX1070, self._stats(), random_access_bytes=8.0)
        wide = launch_cost(GTX1070, self._stats(), random_access_bytes=128.0)
        assert wide.memory > narrow.memory

    def test_block_size_validated(self):
        device = GpuDevice("gtx1070")
        with pytest.raises(ValueError, match="block size"):
            device.launch(self._stats(), threads_per_block=2048)


class TestGpuDevice:
    def test_context_init_charged_once(self):
        device = GpuDevice("gtx1070")
        assert device.elapsed == pytest.approx(GTX1070.context_init_seconds)

    def test_alloc_charges_overhead_and_tracks(self):
        device = GpuDevice("gtx1070")
        t0 = device.elapsed
        device.alloc("beliefs", 1024)
        assert device.elapsed > t0
        assert device.global_mem.in_use == 1024

    def test_constant_memory_capacity(self):
        device = GpuDevice("gtx1070")
        with pytest.raises(GpuOutOfMemoryError):
            device.alloc("big", 128 * 1024, space="constant")

    def test_fits(self):
        device = GpuDevice("gtx1070")
        assert device.fits(GTX1070.vram_bytes)
        assert not device.fits(GTX1070.vram_bytes + 1)

    def test_management_fraction_high_for_tiny_workloads(self):
        """§4.1.1: 99.8 % of the smallest benchmark is management."""
        device = GpuDevice("gtx1070")
        device.alloc("x", 4096)
        device.h2d(4096)
        device.launch(SweepStats(nodes_processed=10, edges_processed=40, flops=500,
                                 sequential_bytes=1000, random_bytes=320,
                                 random_accesses=80, kernel_launches=1))
        assert device.breakdown.management_fraction > 0.9

    def test_reset_restores_fresh_process(self):
        device = GpuDevice("gtx1070")
        device.alloc("x", 4096)
        device.h2d(10**6)
        device.reset()
        assert device.elapsed == pytest.approx(GTX1070.context_init_seconds)
        assert device.global_mem.in_use == 0

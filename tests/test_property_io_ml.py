"""Property-based tests on the I/O formats and ML substrate (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential
from repro.io.mtx import read_mtx_graph, write_mtx_graph
from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score
from repro.ml.model_selection import KFold, train_test_split
from repro.ml.preprocessing import PCA, StandardScaler

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=12))
    n_edges = draw(st.integers(min_value=1, max_value=20))
    n_states = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n_nodes, size=(n_edges, 2))
    priors = np.maximum(rng.dirichlet(np.ones(n_states), size=n_nodes), 1e-4)
    priors /= priors.sum(axis=1, keepdims=True)
    return BeliefGraph.from_undirected(
        priors, edges, attractive_potential(n_states, 0.7)
    )


class TestMtxRoundtrip:
    @given(small_graphs(), st.booleans())
    @settings(**SETTINGS)
    def test_lossless(self, graph, inline):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            d = Path(tmp)
            write_mtx_graph(graph, d / "g.nodes", d / "g.edges", inline_shared=inline)
            loaded = read_mtx_graph(d / "g.nodes", d / "g.edges")
            self._check(graph, loaded)

    @staticmethod
    def _check(graph, loaded):
        assert loaded.n_nodes == graph.n_nodes
        assert loaded.n_edges == graph.n_edges
        np.testing.assert_allclose(
            loaded.priors.dense(), graph.priors.dense(), atol=1e-5
        )
        for e in range(graph.n_edges):
            np.testing.assert_allclose(
                loaded.potentials.matrix(e), graph.potentials.matrix(e), atol=1e-5
            )


class TestMetricProperties:
    labels = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=60)

    @given(labels)
    @settings(**SETTINGS)
    def test_perfect_prediction_scores_one(self, y):
        assert accuracy_score(y, y) == 1.0
        if len(set(y)) <= 2:
            assert f1_score(y, y) in (0.0, 1.0)  # 0.0 only if positives absent

    @given(labels, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**SETTINGS)
    def test_f1_bounded_and_symmetric_in_shuffles(self, y, seed):
        rng = np.random.default_rng(seed)
        y = np.asarray(y)
        pred = rng.permutation(y)
        score = f1_score(y, pred)
        assert 0.0 <= score <= 1.0

    @given(labels, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**SETTINGS)
    def test_confusion_matrix_totals(self, y, seed):
        rng = np.random.default_rng(seed)
        y = np.asarray(y)
        pred = rng.integers(0, 2, size=len(y))
        cm = confusion_matrix(y, pred, labels=[0, 1])
        assert cm.sum() == len(y)
        assert (cm >= 0).all()


class TestModelSelectionProperties:
    @given(
        st.integers(min_value=10, max_value=80),
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**SETTINGS)
    def test_split_is_partition(self, n, test_size, seed):
        X = np.arange(n).reshape(-1, 1)
        y = np.arange(n) % 2
        Xtr, Xte, ytr, yte = train_test_split(
            X, y, test_size=test_size, random_state=seed
        )
        merged = np.sort(np.concatenate([Xtr, Xte]).reshape(-1))
        np.testing.assert_array_equal(merged, np.arange(n))
        assert len(ytr) + len(yte) == n

    @given(
        st.integers(min_value=6, max_value=50),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**SETTINGS)
    def test_kfold_partition(self, n, k, seed):
        folds = list(KFold(k, random_state=seed).split(np.arange(n)))
        assert len(folds) == k
        all_test = np.sort(np.concatenate([t for _, t in folds]))
        np.testing.assert_array_equal(all_test, np.arange(n))


class TestPreprocessingProperties:
    matrices = st.integers(min_value=0, max_value=2**31 - 1)

    @given(matrices)
    @settings(**SETTINGS)
    def test_scaler_inverse_identity(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(20, 4)) * rng.uniform(0.5, 4.0, size=4)
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9
        )

    @given(matrices)
    @settings(**SETTINGS)
    def test_pca_variance_ratios_sum_below_one(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 5))
        pca = PCA(3).fit(X)
        ratios = pca.explained_variance_ratio_
        assert (ratios >= -1e-12).all()
        assert ratios.sum() <= 1.0 + 1e-9
        # components are orthonormal
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

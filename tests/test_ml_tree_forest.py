"""Decision tree and random forest (paper §3.7, §4.3)."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier, f1_score
from repro.ml.base import NotFittedError


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
    return X, y


def stripes(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1)) * 4
    y = (X[:, 0].astype(int) % 2).astype(int)
    return X, y


class TestDecisionTree:
    def test_fits_axis_aligned_split_perfectly(self):
        X = np.array([[0.1], [0.2], [0.8], [0.9]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)
        assert tree.depth() == 1

    def test_xor_needs_depth_two(self):
        X, y = xor_data()
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert deep.score(X, y) > shallow.score(X, y)
        assert deep.score(X, y) > 0.95

    def test_max_depth_respected(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        X, y = xor_data(50)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [int(node.counts.sum())]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree.root_)) >= 10

    def test_predict_proba_normalized(self):
        X, y = xor_data()
        proba = DecisionTreeClassifier(max_depth=3).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [1.0], [0.1], [0.9]])
        y = np.array(["edge", "node", "edge", "node"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) <= {"edge", "node"}

    def test_feature_importances_sum_to_one(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [0.1], [0.2]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf

    def test_describe_renders_structure(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        text = tree.describe(["alpha", "beta"])
        assert "alpha" in text or "beta" in text
        assert "<=" in text

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    @pytest.mark.parametrize(
        "kwargs", [{"max_depth": 0}, {"min_samples_split": 1}, {"min_samples_leaf": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(**kwargs)

    def test_deterministic_given_seed(self):
        X, y = xor_data()
        t1 = DecisionTreeClassifier(max_depth=3, max_features=1, random_state=7).fit(X, y)
        t2 = DecisionTreeClassifier(max_depth=3, max_features=1, random_state=7).fit(X, y)
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))


class TestRandomForest:
    def test_beats_single_stump_on_xor(self):
        X, y = xor_data(400)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        forest = RandomForestClassifier(
            n_estimators=14, max_depth=6, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) > stump.score(X, y)

    def test_paper_configuration_learns_stripes(self):
        X, y = stripes(300)
        forest = RandomForestClassifier(
            n_estimators=14, max_depth=6, random_state=0
        ).fit(X, y)
        assert f1_score(y, forest.predict(X)) > 0.9

    def test_n_estimators_trees_built(self):
        X, y = xor_data(100)
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 5

    def test_probabilities_normalized(self):
        X, y = xor_data(100)
        proba = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_feature_importances_highlight_informative(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 3))
        y = (X[:, 1] > 0.5).astype(int)  # only feature 1 matters
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert forest.feature_importances_.argmax() == 1

    def test_reproducible(self):
        X, y = xor_data(150)
        f1 = RandomForestClassifier(n_estimators=6, random_state=3).fit(X, y)
        f2 = RandomForestClassifier(n_estimators=6, random_state=3).fit(X, y)
        np.testing.assert_array_equal(f1.predict(X), f2.predict(X))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential, random_potential

#: the family-out Bayesian network of paper Figure 1 (Charniak 1991),
#: exercised by the parser and conversion tests
FAMILY_OUT_BIF = """
network family_out {
  property author = charniak ;
}
variable family_out { type discrete [ 2 ] { true, false }; }
variable bowel_problem { type discrete [ 2 ] { true, false }; }
variable light_on { type discrete [ 2 ] { true, false }; }
variable dog_out { type discrete [ 2 ] { true, false }; }
variable hear_bark { type discrete [ 2 ] { true, false }; }
probability ( family_out ) { table 0.15, 0.85; }
probability ( bowel_problem ) { table 0.01, 0.99; }
probability ( light_on | family_out ) {
  (true) 0.6, 0.4;
  (false) 0.05, 0.95;
}
probability ( dog_out | family_out, bowel_problem ) {
  (true, true) 0.99, 0.01;
  (true, false) 0.9, 0.1;
  (false, true) 0.97, 0.03;
  (false, false) 0.3, 0.7;
}
probability ( hear_bark | dog_out ) {
  (true) 0.7, 0.3;
  (false) 0.01, 0.99;
}
"""


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def family_out_bif():
    return FAMILY_OUT_BIF


def make_tree_graph(seed: int = 0, n_states: int = 2, n_nodes: int = 7) -> BeliefGraph:
    """A random tree MRF (exact BP ground truth available)."""
    rng = np.random.default_rng(seed)
    edges = np.array([[rng.integers(0, v), v] for v in range(1, n_nodes)])
    priors = rng.dirichlet(np.ones(n_states), size=n_nodes)
    return BeliefGraph.from_undirected(
        priors, edges, random_potential(n_states, rng)
    )


def make_loopy_graph(
    seed: int = 0, n_nodes: int = 12, n_edges: int = 20, n_states: int = 2,
    coupling: float = 0.7, layout: str = "aos",
) -> BeliefGraph:
    """A small random graph with cycles."""
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n_nodes, size=(n_edges, 2))
    priors = rng.dirichlet(np.ones(n_states), size=n_nodes)
    return BeliefGraph.from_undirected(
        priors, edges, attractive_potential(n_states, coupling), layout=layout
    )


@pytest.fixture
def tree_graph():
    return make_tree_graph()


@pytest.fixture
def loopy_graph():
    return make_loopy_graph()

"""Asynchronous sharded execution (DESIGN.md §12).

The headline contract: ``ShardedLoopyBP(policy="async", staleness=0)``
is **bit-exact** with the sync policy (SSP with a zero window *is* a
lockstep round), and ``staleness>0`` converges to the same fixed point
within 1e-6 — for {2, 4, 7} shards, both paradigms, with evidence.
Work stealing is deterministic: repeated pooled runs are bit-identical.
"""

import numpy as np
import pytest

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.core.observation import observe
from repro.core.potentials import attractive_potential
from repro.core.shard_policies import (
    SHARD_POLICIES,
    AsyncShardPolicy,
    SyncShardPolicy,
    make_shard_policy,
    normalize_shard_policy,
)
from repro.core.sharded import ShardedGraph, ShardedLoopyBP
from repro.partition import (
    OverPartition,
    make_partition,
    measure_partition,
    overpartition,
)

STALE_TOL = 1e-6
SHARD_COUNTS = [2, 4, 7]
STALENESS = [0, 1, 3]


def _graph(n=60, extra=150, b=3, seed=0, names=False):
    rng = np.random.default_rng(seed)
    priors = rng.dirichlet(np.ones(b), size=n)
    spine = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    rand = rng.integers(0, n, size=(extra, 2))
    edges = np.unique(np.sort(np.concatenate([spine, rand]), axis=1), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    return BeliefGraph.from_undirected(
        priors, edges, attractive_potential(b, 0.7),
        node_names=[f"v{i}" for i in range(n)] if names else None,
    )


def _config(paradigm, threshold=1e-5, max_iterations=200):
    return LoopyConfig(
        paradigm=paradigm,
        schedule="sync",
        criterion=ConvergenceCriterion(
            threshold=threshold, max_iterations=max_iterations
        ),
    )


def _sharded(paradigm, n_shards, seed=0, **policy_kwargs):
    g = _graph(seed=seed)
    built = ShardedGraph.build(g, n_shards=n_shards, method="bfs")
    return ShardedLoopyBP(_config(paradigm), **policy_kwargs).run(built)


class TestPolicyRegistry:
    def test_canonical_names_and_aliases(self):
        assert SHARD_POLICIES == ("sync", "async")
        for alias, canonical in [
            ("sync", "sync"), ("lockstep", "sync"), ("bsp", "sync"),
            ("async", "async"), ("ssp", "async"), ("stale", "async"),
        ]:
            assert normalize_shard_policy(alias) == canonical

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard policy"):
            normalize_shard_policy("gossip")

    def test_factory_instantiates_by_name(self):
        assert isinstance(make_shard_policy("sync"), SyncShardPolicy)
        policy = make_shard_policy("ssp", staleness=3, steal_factor=4)
        assert isinstance(policy, AsyncShardPolicy)
        assert policy.staleness == 3 and policy.steal_factor == 4

    def test_sync_rejects_staleness(self):
        with pytest.raises(ValueError, match="staleness-free"):
            make_shard_policy("sync", staleness=2)
        with pytest.raises(ValueError, match="staleness-free"):
            ShardedLoopyBP(policy="lockstep", staleness=1)


class TestAsyncParity:
    """The issue's acceptance matrix: shards × staleness × paradigms."""

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("staleness", STALENESS)
    def test_node_paradigm(self, n_shards, staleness):
        sync = _sharded("node", n_shards)
        run = _sharded(
            "node", n_shards, policy="async", staleness=staleness
        )
        assert run.policy == "async" and run.staleness == staleness
        if staleness == 0:
            # a zero window is a lockstep round: bit-exact, same trajectory
            np.testing.assert_array_equal(run.beliefs, sync.beliefs)
            assert run.iterations == sync.iterations
            np.testing.assert_array_equal(run.delta_history, sync.delta_history)
        else:
            assert run.converged
            assert np.abs(run.beliefs - sync.beliefs).max() <= STALE_TOL

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("staleness", STALENESS)
    def test_edge_paradigm(self, n_shards, staleness):
        # steal_factor=1 keeps the edge paradigm's Gauss-Seidel chunk
        # order shard-deterministic; stealing itself is covered by the
        # determinism test below (and is exact under the node paradigm).
        sync = _sharded("edge", n_shards)
        run = _sharded(
            "edge", n_shards, policy="async", staleness=staleness,
            steal_factor=1,
        )
        if staleness == 0:
            np.testing.assert_array_equal(run.beliefs, sync.beliefs)
            assert run.iterations == sync.iterations
        else:
            assert run.converged
            assert np.abs(run.beliefs - sync.beliefs).max() <= STALE_TOL

    @pytest.mark.parametrize("staleness", STALENESS)
    def test_with_observed_evidence(self, staleness):
        g = _graph(names=True)
        reference = g.copy()
        observe(reference, "v3", 1)
        observe(reference, "v41", 0)
        expected = LoopyBP(_config("node")).run(reference).beliefs

        sharded = ShardedGraph.build(g, n_shards=4, method="bfs")
        view = sharded.instance()
        view.observe("v3", 1)
        view.observe("v41", 0)
        result = ShardedLoopyBP(
            _config("node"), policy="async", staleness=staleness
        ).run(view)
        assert np.abs(result.beliefs - expected).max() <= STALE_TOL
        np.testing.assert_allclose(result.beliefs[3], [0.0, 1.0, 0.0], atol=1e-6)

    def test_staleness_bound_is_respected(self):
        run = _sharded("node", 4, policy="async", staleness=2)
        assert len(run.shard_staleness) == 4
        assert max(run.shard_staleness) <= 2
        assert run.ticks  # replay records for the cost models
        for tick in run.ticks:
            assert tick.max_staleness <= 2
            assert tuple(sorted(tick.swept)) == tick.swept


class TestWorkStealing:
    def test_pooled_runs_are_bit_identical(self):
        """Fixed seed + LPT lane assignment ⇒ stealing is deterministic."""
        runs = [
            _sharded(
                "node", 4, seed=9, policy="async", staleness=2,
                steal_factor=8, max_workers=4,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].beliefs, runs[1].beliefs)
        assert runs[0].iterations == runs[1].iterations
        assert runs[0].stolen_items == runs[1].stolen_items
        assert runs[0].shard_staleness == runs[1].shard_staleness

    def test_pool_matches_serial(self):
        serial = _sharded("node", 4, policy="async", staleness=2)
        pooled = _sharded(
            "node", 4, policy="async", staleness=2, max_workers=4
        )
        np.testing.assert_array_equal(serial.beliefs, pooled.beliefs)
        assert serial.iterations == pooled.iterations

    def test_stealing_splits_work(self):
        # stealing needs parallel lanes: serial runs (and steal_factor=1)
        # keep every shard whole
        split = _sharded("node", 2, policy="async", staleness=1,
                         steal_factor=8, max_workers=4)
        whole = _sharded("node", 2, policy="async", staleness=1,
                         steal_factor=1, max_workers=4)
        assert split.stolen_items > 0
        assert whole.stolen_items == 0
        np.testing.assert_array_equal(split.beliefs, whole.beliefs)


class TestOverPartition:
    def test_regions_refine_the_base_partition(self):
        g = _graph()
        base = make_partition(g, 4, method="bfs")
        over = overpartition(g, base, 8)
        assert isinstance(over, OverPartition)
        assert over.n_regions == 32
        # every region id falls inside its owner shard's band
        np.testing.assert_array_equal(
            over.region_assignment // 8, base.assignment
        )
        for shard in range(4):
            assert over.regions_of(shard) == range(shard * 8, (shard + 1) * 8)
        assert over.region_nodes.sum() == g.n_nodes
        assert over.region_edges.sum() == g.n_edges

    def test_region_balance_and_stats(self):
        g = _graph()
        over = overpartition(g, make_partition(g, 4, method="bfs"), 4)
        assert over.region_balance >= 1.0
        stats = over.stats()
        assert stats["factor"] == 4.0 and stats["n_regions"] == 16.0
        assert stats["region_balance"] == over.region_balance
        assert "cut_fraction" in stats  # base stats ride along
        assert "factor=4" not in repr(over.base)  # base untouched

    def test_factor_one_is_the_identity(self):
        g = _graph()
        base = make_partition(g, 3, method="range")
        over = overpartition(g, base, 1)
        np.testing.assert_array_equal(over.region_assignment, base.assignment)
        with pytest.raises(ValueError, match="factor"):
            overpartition(g, base, 0)

    def test_measure_partition_wraps_custom_assignments(self):
        g = _graph()
        skew = np.zeros(g.n_nodes, dtype=np.int64)
        skew[: g.n_nodes // 8] = 1
        part = measure_partition(g, skew)
        assert part.n_shards == 2 and part.method == "custom"
        assert part.balance > 1.0  # deliberately lopsided
        with pytest.raises(ValueError, match="shape"):
            measure_partition(g, skew[:-1])
        with pytest.raises(ValueError, match="negative"):
            measure_partition(g, skew - 1)


class TestAsyncBackend:
    def test_async_drops_the_barrier_term(self):
        from repro.backends import get_backend

        g = _graph()
        sync = get_backend("sharded", n_shards=4, partitioner="bfs").run(g.copy())
        fast = get_backend(
            "sharded", n_shards=4, partitioner="bfs",
            policy="async", staleness=2,
        ).run(g.copy())
        assert sync.detail["policy"] == "sync"
        assert fast.detail["policy"] == "async"
        assert fast.detail["staleness"] == 2
        assert fast.detail["barrier_idle_s"] < sync.detail["barrier_idle_s"]
        assert np.abs(fast.beliefs - sync.beliefs).max() <= 1e-5

    def test_multigpu_async_replay(self):
        from repro.backends import get_backend

        g = _graph()
        sync = get_backend("cuda-multi", n_devices=2, partitioner="bfs").run(
            g.copy()
        )
        run = get_backend(
            "cuda-multi", n_devices=2, partitioner="bfs",
            policy="async", staleness=1,
        ).run(g.copy())
        assert run.detail["policy"] == "async"
        assert run.modeled_time > 0
        assert np.abs(run.beliefs - sync.beliefs).max() <= 1e-5


class TestAsyncInstrumentation:
    """PR-4's race detector must not false-positive on async overlap."""

    def _build(self, seed=5):
        g = _graph(seed=seed)
        return ShardedGraph.build(g, n_shards=4, method="bfs")

    def test_instrumented_async_run_is_race_free(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.analysis import RaceDetector

        det = RaceDetector()
        with ThreadPoolExecutor(max_workers=4) as pool:
            result = ShardedLoopyBP(
                _config("node"), pool=pool, instrument=det,
                policy="async", staleness=2,
            ).run(self._build())
        assert result.converged
        assert det.n_accesses > 0
        det.assert_race_free()

    def test_instrumentation_preserves_async_numerics(self):
        from repro.analysis import RaceDetector

        det = RaceDetector()
        instrumented = ShardedLoopyBP(
            _config("node"), instrument=det, policy="async", staleness=1
        ).run(self._build())
        plain = ShardedLoopyBP(
            _config("node"), policy="async", staleness=1
        ).run(self._build())
        np.testing.assert_array_equal(instrumented.beliefs, plain.beliefs)
        assert instrumented.iterations == plain.iterations

    def test_shard_phase_bumps_only_its_domain(self):
        from repro.analysis import RaceDetector

        det = RaceDetector()
        a = det.track(np.zeros((4, 2), dtype=np.float32), "shard0.messages")
        b = det.track(np.zeros((4, 2), dtype=np.float32), "shard1.messages")
        a[1] = 1.0
        b[1] = 1.0
        det.on_shard_phase(0, "tick")
        a[1] = 2.0  # new shard0 epoch
        b[1] = 2.0  # still shard1's first epoch — and that is fine
        assert det.check() == []
        epochs = {acc.array: set() for acc in det._accesses}
        for acc in det._accesses:
            epochs[acc.array].add(acc.epoch)
        # shard0 saw the phase edge; shard1's clock never moved
        assert len(epochs["shard0.messages"]) == 2
        assert len(epochs["shard1.messages"]) == 1


class TestCredoAsyncPlans:
    def test_plan_freezes_policy_and_staleness(self):
        from repro.credo.runner import Credo

        g = _graph()
        plan = Credo().plan(
            g, backend="sharded:sync", shards=4, partitioner="bfs",
            policy="async", staleness=2,
        )
        assert plan.policy == "async" and plan.staleness == 2
        assert plan.qualified == "sharded:sync@4xbfs+async~2"

    def test_policy_defaults_resolve_sensibly(self):
        from repro.credo.runner import Credo

        g = _graph()
        credo = Credo()
        # staleness alone implies async; async alone gets a window of 1
        assert credo.plan(g, backend="sharded:sync", shards=2,
                          staleness=2).policy == "async"
        assert credo.plan(g, backend="sharded:sync", shards=2,
                          policy="async").staleness == 1
        # unsharded plans are always sync/0
        plan = credo.plan(g, backend="c-node:sync")
        assert plan.policy == "sync" and plan.staleness == 0
        assert "+sync" not in plan.qualified

    def test_sync_plan_rejects_staleness(self):
        from repro.credo.runner import ExecutionPlan

        with pytest.raises(ValueError, match="staleness-free"):
            ExecutionPlan("sharded", "sync", shards=2,
                          policy="sync", staleness=1)

    def test_selector_picks_async_for_heavy_tails(self):
        from repro.credo.selector import CredoSelector

        sel = CredoSelector()
        rng = np.random.default_rng(0)
        n = 80
        # star-heavy graph: one hub touches everything
        hub_edges = np.stack([np.zeros(n - 1, dtype=np.int64),
                              np.arange(1, n)], axis=1)
        hub = BeliefGraph.from_undirected(
            rng.dirichlet(np.ones(2), size=n), hub_edges,
            attractive_potential(2, 0.7),
        )
        assert sel.select_shard_policy(hub, 4) == ("async", 1)
        # a balanced spine stays lockstep, and one shard is always sync
        chain = _graph(extra=0)
        assert sel.select_shard_policy(chain, 4) == ("sync", 0)
        assert sel.select_shard_policy(hub, 1) == ("sync", 0)

    def test_credo_run_async_matches_sync(self):
        from repro.credo.runner import Credo

        g = _graph()
        credo = Credo()
        base = credo.run(g.copy(), backend="sharded:sync", shards=3,
                         partitioner="bfs")
        run = credo.run(g.copy(), backend="sharded:sync", shards=3,
                        partitioner="bfs", policy="async", staleness=1)
        assert run.detail["policy"] == "async"
        assert np.abs(run.beliefs - base.beliefs).max() <= 1e-5


class TestServeAsync:
    def test_config_validates_policy_knobs(self):
        from repro.serve import ServerConfig

        with pytest.raises(ValueError, match="unknown shard policy"):
            ServerConfig(shard_policy="gossip")
        with pytest.raises(ValueError, match="staleness"):
            ServerConfig(shard_policy="async", staleness=-1)
        with pytest.raises(ValueError, match="staleness-free"):
            ServerConfig(shard_policy="sync", staleness=2)

    def test_async_server_matches_sync_posteriors(self):
        from repro.serve import InferenceServer, ServerConfig

        g = _graph(names=True)
        async_cfg = ServerConfig(
            shards=2, partitioner="bfs", backend="c-node", schedule="sync",
            shard_policy="async", staleness=1,
        )
        sync_cfg = ServerConfig(
            shards=2, partitioner="bfs", backend="c-node", schedule="sync",
        )
        with InferenceServer(async_cfg) as s1, InferenceServer(sync_cfg) as s2:
            s1.register_model("m", g.copy())
            s2.register_model("m", g.copy())
            desc = s1.registry.describe()[0]
            assert desc["shard_policy"] == "async" and desc["staleness"] == 1
            r1 = s1.query("m", {"v3": 1})
            r2 = s2.query("m", {"v3": 1})
            assert r1.ok and r2.ok
            for name in r1.posteriors:
                np.testing.assert_allclose(
                    r1.posteriors[name], r2.posteriors[name], atol=1e-5
                )
            # policy is part of the cache key: repeat hits, not recomputes
            assert s1.query("m", {"v3": 1}).cached


class TestTelemetryColumns:
    def test_summary_table_reports_idle_and_staleness(self):
        from repro.telemetry.export import summary_table
        from repro.telemetry.tracer import SpanEvent

        events = [
            SpanEvent("backend.run", "backend", 0.0, 0.2, "host", "main",
                      args={"barrier_idle_s": 0.05, "staleness": 2}),
            SpanEvent("bp.sweep", "core", 0.0, 0.1, "host", "main"),
        ]
        table = summary_table(events)
        header, _, *rows = table.splitlines()
        assert "idle_ms" in header and "stale" in header
        run_row = next(r for r in rows if "backend.run" in r)
        sweep_row = next(r for r in rows if "bp.sweep" in r)
        assert "50.000" in run_row and " 2" in run_row
        assert sweep_row.rstrip().endswith("-")

"""Metrics, model selection and preprocessing (paper §4.3)."""

import numpy as np
import pytest

from repro.ml import (
    KFold,
    PCA,
    StandardScaler,
    accuracy_score,
    confusion_matrix,
    cross_val_score,
    f1_score,
    train_test_split,
)
from repro.ml.metrics import precision_recall_f1
from repro.ml.model_selection import balanced_subsample


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == pytest.approx(0.75)

    def test_f1_hand_computed(self):
        # tp=2, fp=1, fn=1 -> precision=2/3, recall=2/3, f1=2/3
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r, f1 = precision_recall_f1(y_true, y_pred, positive=1)
        assert (p, r) == (pytest.approx(2 / 3), pytest.approx(2 / 3))
        assert f1 == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_f1_perfect_and_zero(self):
        assert f1_score([1, 0], [1, 0]) == 1.0
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_f1_string_labels_default_positive(self):
        # lexicographically larger label is positive
        assert f1_score(["node", "edge"], ["node", "edge"]) == 1.0

    def test_macro_f1(self):
        y_true = [0, 0, 1, 1, 2, 2]
        y_pred = [0, 0, 1, 1, 1, 2]
        macro = f1_score(y_true, y_pred, average="macro")
        per_class = [
            precision_recall_f1(y_true, y_pred, c)[2] for c in (0, 1, 2)
        ]
        assert macro == pytest.approx(np.mean(per_class))

    def test_binary_f1_rejects_multiclass(self):
        with pytest.raises(ValueError, match="binary"):
            f1_score([0, 1, 2], [0, 1, 2])

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestModelSelection:
    def test_split_sizes_60_40(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.array([0, 1] * 50)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.4, random_state=0)
        assert len(Xte) == 40 and len(Xtr) == 60
        assert len(ytr) == 60 and len(yte) == 40

    def test_split_partitions(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.array([0, 1] * 25)
        Xtr, Xte, _, _ = train_test_split(X, y, random_state=1)
        combined = np.sort(np.concatenate([Xtr, Xte]).reshape(-1))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_stratified_split_balanced(self):
        X = np.zeros((100, 1))
        y = np.array([0] * 80 + [1] * 20)
        _, _, ytr, yte = train_test_split(X, y, test_size=0.4, random_state=2)
        assert abs((ytr == 1).mean() - 0.2) < 0.05
        assert abs((yte == 1).mean() - 0.2) < 0.05

    def test_kfold_covers_everything_once(self):
        X = np.arange(10)
        folds = list(KFold(3, random_state=0).split(X))
        assert len(folds) == 3
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(all_test, np.arange(10))
        for train, test in folds:
            assert len(np.intersect1d(train, test)) == 0

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            KFold(1)
        with pytest.raises(ValueError):
            list(KFold(5).split(np.arange(3)))

    def test_cross_val_score_three_folds(self):
        from repro.ml import DecisionTreeClassifier

        rng = np.random.default_rng(0)
        X = rng.random((60, 1))
        y = (X[:, 0] > 0.5).astype(int)
        scores = cross_val_score(lambda: DecisionTreeClassifier(max_depth=2), X, y, cv=3)
        assert scores.shape == (3,)
        assert scores.mean() > 0.9

    def test_balanced_subsample(self):
        X = np.zeros((100, 1))
        y = np.array([0] * 80 + [1] * 20)
        _, ys = balanced_subsample(X, y, 30, random_state=0)
        assert len(ys) == 30
        assert (ys == 1).sum() >= 10  # far above the 20% base rate

    def test_balanced_subsample_too_many(self):
        with pytest.raises(ValueError):
            balanced_subsample(np.zeros((5, 1)), np.zeros(5), 6)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.2])
    def test_split_validation(self, bad):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=bad)


class TestPreprocessing:
    def test_scaler_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 2))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_constant_feature_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_scaler_inverse(self):
        X = np.random.default_rng(1).random((20, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12)

    def test_pca_recovers_dominant_direction(self):
        rng = np.random.default_rng(2)
        t = rng.normal(size=500)
        X = np.column_stack([t, 2 * t]) + rng.normal(0, 0.01, size=(500, 2))
        pca = PCA(1).fit(X)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([1.0, 2.0]) / np.sqrt(5)
        assert abs(abs(direction @ expected) - 1.0) < 1e-3
        assert pca.explained_variance_ratio_[0] > 0.99

    def test_pca_transform_inverse_roundtrip(self):
        X = np.random.default_rng(3).random((30, 4))
        pca = PCA(4).fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-10
        )

    def test_pca_validation(self):
        with pytest.raises(ValueError):
            PCA(0)
        from repro.ml.base import NotFittedError

        with pytest.raises(NotFittedError):
            PCA(1).transform(np.zeros((2, 2)))

"""The Bayesian-network IR and its pairwise projection (paper §2.1)."""

import numpy as np
import pytest

from repro.core import exact_marginals
from repro.io.network import BayesianNetwork, Cpt, Variable, network_to_belief_graph


def chain_network():
    """a -> b -> c, all binary."""
    net = BayesianNetwork(name="chain")
    for name in ("a", "b", "c"):
        net.add_variable(Variable(name, ["t", "f"]))
    net.add_cpt(Cpt("a", [], np.array([0.3, 0.7])))
    net.add_cpt(Cpt("b", ["a"], np.array([[0.9, 0.1], [0.2, 0.8]])))
    net.add_cpt(Cpt("c", ["b"], np.array([[0.6, 0.4], [0.1, 0.9]])))
    return net


class TestVariable:
    def test_state_index(self):
        v = Variable("x", ["low", "high"])
        assert v.state_index("high") == 1
        with pytest.raises(KeyError):
            v.state_index("medium")

    def test_arity(self):
        assert Variable("x", ["a", "b", "c"]).arity == 3


class TestNetworkValidation:
    def test_duplicate_variable(self):
        net = BayesianNetwork(name="n")
        net.add_variable(Variable("x", ["t", "f"]))
        with pytest.raises(ValueError, match="duplicate"):
            net.add_variable(Variable("x", ["t", "f"]))

    def test_cpt_shape_checked(self):
        net = BayesianNetwork(name="n")
        net.add_variable(Variable("x", ["t", "f"]))
        with pytest.raises(ValueError, match="shape"):
            net.add_cpt(Cpt("x", [], np.array([0.5, 0.3, 0.2])))

    def test_cpt_rows_must_normalize(self):
        net = BayesianNetwork(name="n")
        net.add_variable(Variable("x", ["t", "f"]))
        with pytest.raises(ValueError, match="sum to 1"):
            net.add_cpt(Cpt("x", [], np.array([0.9, 0.3])))

    def test_undeclared_child(self):
        net = BayesianNetwork(name="n")
        with pytest.raises(ValueError, match="undeclared"):
            net.add_cpt(Cpt("ghost", [], np.array([0.5, 0.5])))

    def test_missing_cpt_on_validate(self):
        net = BayesianNetwork(name="n")
        net.add_variable(Variable("x", ["t", "f"]))
        with pytest.raises(ValueError, match="no probability block"):
            net.validate()


class TestPriors:
    def test_chain_marginal_priors(self):
        net = chain_network()
        # p(b=t) = 0.3*0.9 + 0.7*0.2 = 0.41
        np.testing.assert_allclose(net.prior("b"), [0.41, 0.59], atol=1e-12)
        # p(c=t) = 0.41*0.6 + 0.59*0.1 = 0.305
        np.testing.assert_allclose(net.prior("c"), [0.305, 0.695], atol=1e-12)


class TestProjection:
    def test_chain_projection_preserves_joint_on_trees(self):
        """For tree-shaped Bayesian networks the pairwise projection is
        exact: the MRF marginals equal the ancestral marginals."""
        net = chain_network()
        graph = network_to_belief_graph(net)
        marg = exact_marginals(graph)
        np.testing.assert_allclose(marg[0], net.prior("a"), atol=1e-5)
        np.testing.assert_allclose(marg[1], net.prior("b"), atol=1e-5)
        np.testing.assert_allclose(marg[2], net.prior("c"), atol=1e-5)

    def test_multi_parent_projection_marginalizes_others(self):
        net = BayesianNetwork(name="v")
        for name in ("a", "b", "c"):
            net.add_variable(Variable(name, ["t", "f"]))
        net.add_cpt(Cpt("a", [], np.array([0.5, 0.5])))
        net.add_cpt(Cpt("b", [], np.array([0.2, 0.8])))
        table = np.array([[[0.99, 0.01], [0.7, 0.3]], [[0.6, 0.4], [0.05, 0.95]]])
        net.add_cpt(Cpt("c", ["a", "b"], table))
        graph = network_to_belief_graph(net)
        # edge a->c carries p(c|a) with b marginalized under its prior
        edge = [
            e for e in range(graph.n_edges)
            if graph.node_names[graph.src[e]] == "a"
            and graph.node_names[graph.dst[e]] == "c"
        ][0]
        expected = 0.2 * table[:, 0, :] + 0.8 * table[:, 1, :]
        np.testing.assert_allclose(
            graph.potentials.matrix(edge), expected, atol=1e-6
        )

    def test_ragged_network_projection(self):
        net = BayesianNetwork(name="r")
        net.add_variable(Variable("x", ["a", "b"]))
        net.add_variable(Variable("y", ["p", "q", "r"]))
        net.add_cpt(Cpt("x", [], np.array([0.4, 0.6])))
        net.add_cpt(
            Cpt("y", ["x"], np.array([[0.5, 0.25, 0.25], [0.1, 0.1, 0.8]]))
        )
        graph = network_to_belief_graph(net)
        assert not graph.uniform
        from repro.backends.reference import ReferenceBackend

        result = ReferenceBackend().run(graph)
        assert result.converged

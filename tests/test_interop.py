"""networkx interoperability round-trips."""

import networkx as nx
import numpy as np
import pytest

from repro.core import LoopyBP, exact_marginals
from repro.interop import from_networkx, to_networkx
from tests.conftest import make_loopy_graph


class TestFromNetworkx:
    def test_basic_conversion(self):
        G = nx.path_graph(4)
        g = from_networkx(G)
        assert g.n_nodes == 4
        assert g.n_edges == 6  # 3 undirected edges -> directed pairs
        assert g.node_names == ["0", "1", "2", "3"]

    def test_priors_and_potentials_carried(self):
        G = nx.Graph()
        G.add_node("a", prior=[0.9, 0.1])
        G.add_node("b")
        G.add_edge("a", "b", potential=np.array([[0.8, 0.2], [0.2, 0.8]]))
        g = from_networkx(G)
        np.testing.assert_allclose(g.priors.get(0), [0.9, 0.1], atol=1e-6)
        np.testing.assert_allclose(g.priors.get(1), [0.5, 0.5], atol=1e-6)
        np.testing.assert_allclose(
            g.potentials.matrix(0), [[0.8, 0.2], [0.2, 0.8]], atol=1e-6
        )

    def test_validation(self):
        G = nx.Graph()
        G.add_node("a", prior=[0.2, 0.3, 0.5])
        with pytest.raises(ValueError, match="states"):
            from_networkx(G, n_states=2)

    def test_self_loops_dropped(self):
        G = nx.Graph()
        G.add_edge(0, 0)
        G.add_edge(0, 1)
        g = from_networkx(G)
        assert g.n_edges == 2

    def test_bp_runs_on_converted_graph(self):
        G = nx.karate_club_graph()
        g = from_networkx(G)
        result = LoopyBP().run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)


class TestRoundtrip:
    def test_posteriors_survive(self):
        """BP on the round-tripped graph equals BP on the original."""
        g = make_loopy_graph(seed=11, n_nodes=8, n_edges=12)
        expected = LoopyBP().run(g.copy()).beliefs
        G = to_networkx(g)
        g2 = from_networkx(G, n_states=2)
        result = LoopyBP().run(g2)
        order = [g2.node_names.index(str(i)) for i in range(g.n_nodes)]
        np.testing.assert_allclose(result.beliefs[order], expected, atol=1e-4)

    def test_exported_attributes(self):
        g = make_loopy_graph(seed=12, n_nodes=5, n_edges=7)
        LoopyBP().run(g)
        G = to_networkx(g)
        assert G.number_of_nodes() == 5
        for _node, data in G.nodes(data=True):
            assert "prior" in data and "belief" in data
            assert data["belief"].sum() == pytest.approx(1.0, abs=1e-4)
        for _u, _v, data in G.edges(data=True):
            assert data["potential"].shape == (2, 2)

    def test_potentials_optional(self):
        g = make_loopy_graph(seed=13, n_nodes=4, n_edges=5)
        G = to_networkx(g, include_potentials=False)
        for _u, _v, data in G.edges(data=True):
            assert "potential" not in data

"""Execution backends: correctness equivalence and result contracts."""

import numpy as np
import pytest

from repro.backends import (
    BackendUnsupportedError,
    CEdgeBackend,
    CNodeBackend,
    CudaEdgeBackend,
    CudaNodeBackend,
    OpenACCBackend,
    OpenMPBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
)
from repro.core import exact_marginals
from repro.core.convergence import ConvergenceCriterion
from tests.conftest import make_loopy_graph, make_tree_graph

ALL_BACKENDS = [
    ReferenceBackend(),
    CNodeBackend(),
    CEdgeBackend(),
    CudaNodeBackend(),
    CudaEdgeBackend(),
    OpenMPBackend(threads=4),
    OpenACCBackend(),
]


class TestRegistry:
    def test_all_names_constructible(self):
        for name in available_backends():
            assert get_backend(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("fpga-node")

    def test_kwargs_forwarded(self):
        be = get_backend("openmp", threads=2)
        assert be.threads == 2
        be = get_backend("cuda-node", device="v100")
        assert be.device_spec.name.startswith("V100")


@pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
class TestCorrectness:
    def test_exact_on_tree(self, backend):
        g = make_tree_graph(seed=41, n_nodes=8)
        expected = exact_marginals(g)
        result = backend.run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=5e-3)

    def test_result_contract(self, backend):
        g = make_loopy_graph(seed=42)
        result = backend.run(g)
        assert result.backend == backend.name
        assert result.iterations >= 1
        assert result.wall_time >= 0.0
        assert result.modeled_time > 0.0
        assert len(result.delta_history) == result.iterations
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)

    def test_respects_criterion(self, backend):
        g = make_loopy_graph(seed=43, coupling=0.9)
        crit = ConvergenceCriterion(threshold=1e-12, max_iterations=3)
        result = backend.run(g, criterion=crit)
        assert result.iterations <= 3


class TestBackendAgreement:
    def test_all_backends_same_posteriors(self):
        g = make_loopy_graph(seed=44, n_nodes=25, n_edges=45)
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=400)
        results = [b.run(g.copy(), criterion=crit) for b in ALL_BACKENDS]
        for r in results[1:]:
            np.testing.assert_allclose(
                r.beliefs, results[0].beliefs, atol=2e-3,
                err_msg=f"{r.backend} disagrees with {results[0].backend}",
            )


class TestCBackends:
    def test_edge_converges_in_fewer_iterations_than_node(self):
        """§4.2: 'the Edge versions tend to converge in only a few
        iterations. Indeed, the Node versions run for tens.'"""
        g = make_loopy_graph(seed=45, n_nodes=200, n_edges=700)
        rn = CNodeBackend().run(g.copy())
        re_ = CEdgeBackend().run(g.copy())
        assert re_.iterations <= rn.iterations

    def test_rejects_ragged(self, family_out_bif):
        # family-out converts to a uniform graph; build a ragged one directly
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import PerEdgePotentialStore

        g = BeliefGraph(
            [np.array([0.5, 0.5]), np.array([0.2, 0.3, 0.5])],
            np.array([0]),
            np.array([1]),
            PerEdgePotentialStore([np.full((2, 3), 1 / 3, dtype=np.float32)]),
        )
        assert not CNodeBackend().supports(g)
        assert ReferenceBackend().supports(g)

    def test_soa_layout_models_slower_than_aos(self):
        """§3.4: AoS wins on cache behaviour, visible in modeled time."""
        g_aos = make_loopy_graph(seed=46, n_nodes=300, n_edges=900, layout="aos")
        g_soa = make_loopy_graph(seed=46, n_nodes=300, n_edges=900, layout="soa")
        t_aos = CNodeBackend().run(g_aos).modeled_time
        t_soa = CNodeBackend().run(g_soa).modeled_time
        assert t_soa > t_aos


class TestCudaBackends:
    def test_detail_carries_breakdown(self):
        g = make_loopy_graph(seed=47)
        result = CudaNodeBackend().run(g)
        assert "management_fraction" in result.detail
        assert 0.0 < result.detail["management_fraction"] <= 1.0

    def test_small_graphs_dominated_by_management(self):
        g = make_loopy_graph(seed=48, n_nodes=10, n_edges=20)
        result = CudaNodeBackend().run(g)
        assert result.detail["management_fraction"] > 0.95

    def test_vram_limit_enforced(self):
        """§4.2: graphs exceeding VRAM are unsupported."""
        be = CudaNodeBackend()
        from repro.credo.training import fits_vram_paper_scale
        from repro.graphs.suite import SUITE

        assert not fits_vram_paper_scale(SUITE["TW"], 32, "gtx1070")
        assert fits_vram_paper_scale(SUITE["10x40"], 2, "gtx1070")

    def test_volta_faster_than_pascal(self):
        """§4.4: 3-4x kernel speedups on the V100."""
        g = make_loopy_graph(seed=49, n_nodes=500, n_edges=2000)
        crit = ConvergenceCriterion(max_iterations=50)
        pascal = CudaNodeBackend("gtx1070").run(g.copy(), criterion=crit)
        volta = CudaNodeBackend("v100").run(g.copy(), criterion=crit)
        assert volta.modeled_time < pascal.modeled_time

    def test_convergence_batching_reduces_transfers(self):
        g = make_loopy_graph(seed=50, n_nodes=100, n_edges=300)
        frequent = CudaNodeBackend(convergence_batch=1).run(g.copy())
        batched = CudaNodeBackend(convergence_batch=8).run(g.copy())
        assert batched.modeled_time <= frequent.modeled_time


class TestOpenMP:
    def test_paper_penalty_ordering(self):
        """§2.4: more threads, more slowdown (1.17x/1.65x/4.03x)."""
        g = make_loopy_graph(seed=51, n_nodes=400, n_edges=1200)
        serial = CNodeBackend().run(g.copy()).modeled_time
        t2 = OpenMPBackend(threads=2).run(g.copy()).modeled_time
        t4 = OpenMPBackend(threads=4).run(g.copy()).modeled_time
        t8 = OpenMPBackend(threads=8).run(g.copy()).modeled_time
        assert serial < t2 < t4 < t8

    def test_disabling_hyperthreading_helps(self):
        g = make_loopy_graph(seed=52, n_nodes=400, n_edges=1200)
        with_ht = OpenMPBackend(threads=4, hyperthreading=True).run(g.copy())
        without_ht = OpenMPBackend(threads=4, hyperthreading=False).run(g.copy())
        assert without_ht.modeled_time < with_ht.modeled_time

    def test_dynamic_scheduler_worse(self):
        """§2.4: 'switching to the dynamic scheduler worsened the problem'."""
        g = make_loopy_graph(seed=53, n_nodes=400, n_edges=1200)
        static = OpenMPBackend(threads=4, schedule="static").run(g.copy())
        dynamic = OpenMPBackend(threads=4, schedule="dynamic").run(g.copy())
        assert dynamic.modeled_time > static.modeled_time

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenMPBackend(threads=0)
        with pytest.raises(ValueError):
            OpenMPBackend(schedule="guided")


class TestOpenACC:
    def test_runs_more_iterations_than_cuda(self):
        """§2.4: the imprecise convergence check drags runs out."""
        g = make_loopy_graph(seed=54, n_nodes=150, n_edges=400)
        acc = OpenACCBackend(paradigm="node").run(g.copy())
        cuda = CudaNodeBackend().run(g.copy())
        assert acc.iterations >= cuda.iterations

    def test_ignores_work_queue(self):
        g = make_loopy_graph(seed=55)
        result = OpenACCBackend().run(g, work_queue=True)
        # queue ops never appear: OpenACC cannot express them (§3.5)
        assert result.stats.queue_ops == 0

"""The telemetry subsystem (DESIGN.md §11): tracer semantics, exporter
schema, metric primitives, and the bit-exactness contract of instrumented
runs across schedules × paradigms."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.credo.runner import Credo
from repro.graphs.grids import grid_graph
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace,
    get_tracer,
    set_tracer,
    summary_table,
    trace_lanes,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.tracer import NULL_LANE, NULL_SPAN


@pytest.fixture
def small_graph():
    return grid_graph(6, 6, n_states=3, seed=7)


class TestNullTracer:
    """Disabled tracing must be a true no-op: shared singletons, no
    events, no clock reads."""

    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert not tracer.enabled
        assert len(tracer) == 0

    def test_span_returns_shared_falsy_singleton(self):
        tracer = NullTracer()
        sp = tracer.span("anything", cat="x", args={"k": 1})
        assert sp is NULL_SPAN
        assert not sp
        with sp as inner:
            assert inner is NULL_SPAN
            inner.set(a=1)  # inert
        assert tracer.events == []

    def test_lane_returns_shared_noop(self):
        tracer = NullTracer()
        lane = tracer.lane("cuda", label="gtx1070")
        assert lane is NULL_LANE
        assert not lane
        lane.emit("kernel", 0.0, 1.0)
        lane.reanchor()
        assert len(tracer) == 0

    def test_complete_and_instant_are_inert(self):
        tracer = NullTracer()
        tracer.complete("x", 0.5)
        tracer.instant("y")
        tracer.clear()
        assert tracer.events == []

    def test_instrumented_run_records_nothing_when_disabled(self, small_graph):
        set_tracer(None)  # belt and braces: ensure the null tracer
        LoopyBP(LoopyConfig(paradigm="node")).run(small_graph.copy())
        assert len(get_tracer()) == 0


class TestTracer:
    def test_spans_nest_and_record(self):
        tracer = Tracer()
        with tracer.span("outer", cat="t") as outer:
            assert outer  # truthy: the guard pattern works
            with tracer.span("inner", cat="t") as inner:
                inner.set(k=1)
        events = tracer.events
        assert [e.name for e in events] == ["inner", "outer"]
        inner_ev, outer_ev = events
        assert inner_ev.args == {"k": 1}
        assert outer_ev.start <= inner_ev.start
        assert outer_ev.start + outer_ev.duration >= inner_ev.start + inner_ev.duration
        assert all(e.domain == "wall" and e.process == "host" for e in events)

    def test_thread_lanes(self):
        tracer = Tracer()

        def work():
            with tracer.span("child"):
                pass

        t = threading.Thread(target=work, name="worker-1")
        with tracer.span("main"):
            t.start()
            t.join()
        threads = {e.thread for e in tracer.events}
        assert "worker-1" in threads and len(threads) == 2

    def test_modeled_lane_anchoring(self):
        tracer = Tracer()
        lane = tracer.lane("cuda", label="sim")
        lane.emit("kernel", 1.0, 0.5, thread="kernels")
        (event,) = tracer.events
        assert event.domain == "modeled"
        assert event.process == "cuda:0 (sim)"
        assert event.start == pytest.approx(lane.anchor + 1.0)
        before = lane.anchor
        lane.reanchor()
        assert lane.anchor >= before

    def test_lanes_auto_number(self):
        tracer = Tracer()
        assert tracer.lane("cuda").process == "cuda:0"
        assert tracer.lane("cuda").process == "cuda:1"
        assert tracer.lane("interconnect").process == "interconnect:0"

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        assert not get_tracer().enabled
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert not get_tracer().enabled

    def test_complete_records_retroactively(self):
        tracer = Tracer()
        tracer.complete("late", 0.25, cat="t")
        (event,) = tracer.events
        assert event.duration == pytest.approx(0.25)
        assert event.start >= 0.0


SCHEDULES = ("sync", "work_queue", "residual", "relaxed")
PARADIGMS = ("node", "edge")


class TestBitExactness:
    """Traced runs must be bit-identical to untraced ones — tracing
    observes, never perturbs (the PR 4 race-detector invariant)."""

    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_loopy_traced_equals_untraced(self, small_graph, schedule, paradigm):
        config = LoopyConfig(paradigm=paradigm, schedule=schedule)
        base = LoopyBP(config).run(small_graph.copy())
        tracer = Tracer()
        with use_tracer(tracer):
            traced = LoopyBP(config).run(small_graph.copy())
        assert np.array_equal(base.beliefs, traced.beliefs)
        assert base.iterations == traced.iterations
        assert base.delta_history == traced.delta_history
        assert len(tracer) > 0  # the run actually was traced

    @pytest.mark.parametrize("backend", ["c-node", "cuda-edge"])
    def test_credo_traced_equals_untraced(self, small_graph, backend):
        credo = Credo(criterion=ConvergenceCriterion(max_iterations=50))
        base = credo.run(small_graph.copy(), backend=backend)
        with use_tracer(Tracer()):
            traced = credo.run(small_graph.copy(), backend=backend)
        assert np.array_equal(base.beliefs, traced.beliefs)
        assert base.iterations == traced.iterations
        assert base.modeled_time == pytest.approx(traced.modeled_time)

    def test_sharded_traced_equals_untraced(self, small_graph):
        credo = Credo(criterion=ConvergenceCriterion(max_iterations=50))
        base = credo.run(small_graph.copy(), backend="c-node", shards=2)
        with use_tracer(Tracer()) as tracer:
            traced = credo.run(small_graph.copy(), backend="c-node", shards=2)
        assert np.array_equal(base.beliefs, traced.beliefs)
        names = {e.name for e in tracer.events}
        assert "shard.sweep" in names and "shard.exchange" in names


class TestChromeExport:
    def _traced_run(self, graph, backend="cuda-node"):
        credo = Credo(criterion=ConvergenceCriterion(max_iterations=30))
        tracer = Tracer()
        with use_tracer(tracer):
            credo.run(graph.copy(), backend=backend)
        return tracer

    def test_schema_round_trip(self, small_graph, tmp_path):
        tracer = self._traced_run(small_graph)
        path = write_chrome_trace(tracer.events, tmp_path / "t.json")
        trace = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(trace) == []
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"M", "X"}

    def test_timestamps_sorted_and_nonnegative(self, small_graph):
        trace = chrome_trace(self._traced_run(small_graph).events)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
        assert all(t >= 0 and e["dur"] >= 0 for t, e in zip(ts, xs))

    def test_modeled_and_host_lanes_present(self, small_graph):
        trace = chrome_trace(self._traced_run(small_graph).events)
        lanes = trace_lanes(trace)
        assert "host" in lanes
        cuda = [p for p in lanes if p.startswith("cuda:")]
        assert cuda, f"no simulated-device lane in {sorted(lanes)}"
        assert {"driver", "pcie", "kernels"} <= set(lanes[cuda[0]])
        total = sum(len(ts) for ts in lanes.values())
        assert total >= 3  # the acceptance-criteria floor

    def test_kernel_spans_carry_cost_breakdown(self, small_graph):
        tracer = self._traced_run(small_graph)
        kernels = [e for e in tracer.events
                   if e.name == "kernel" and e.domain == "modeled"]
        assert kernels
        for event in kernels:
            # the full KernelCost decomposition, queue cycles included
            assert {"launch_s", "compute_s", "memory_s", "atomics_s",
                    "reduction_s", "queue_s", "queue_ops"} <= set(event.args)

    def test_sweep_spans_carry_sweepstats(self, small_graph):
        tracer = Tracer()
        with use_tracer(tracer):
            LoopyBP(LoopyConfig(paradigm="node", schedule="work_queue")).run(
                small_graph.copy()
            )
        sweeps = [e for e in tracer.events if e.name == "bp.sweep"]
        assert sweeps
        for event in sweeps:
            assert {"iteration", "flops", "queue_ops", "atomic_ops",
                    "global_delta"} <= set(event.args)

    def test_summary_table_renders(self, small_graph):
        table = summary_table(self._traced_run(small_graph).events)
        assert "kernel" in table and "lane" in table
        assert summary_table([]) == "(no spans recorded)"

    def test_validator_flags_problems(self):
        bad = {"traceEvents": [
            {"ph": "X", "pid": 9, "tid": 9, "ts": -1, "dur": -2, "name": "x"},
            {"ph": "B", "pid": 9, "tid": 9, "ts": 0, "name": "y"},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("bad ts" in p for p in problems)
        assert any("dur" in p for p in problems)
        assert any("phase" in p for p in problems)
        assert any("process_name" in p for p in problems)
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]


class TestMetrics:
    def test_histogram_is_the_serve_latency_histogram(self):
        from repro.serve.metrics import LatencyHistogram as ServeAlias

        assert ServeAlias is Histogram is LatencyHistogram

    def test_histogram_merge_matches_union(self):
        a, b, union = Histogram(), Histogram(), Histogram()
        for i in range(1, 50):
            a.record(i / 1000.0)
            union.record(i / 1000.0)
        for i in range(50, 120):
            b.record(i / 500.0)
            union.record(i / 500.0)
        a.merge(b)
        assert a.counts == union.counts
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        assert a.max == union.max
        assert a.percentile(95) == union.percentile(95)

    def test_histogram_merge_across_threads(self):
        locals_ = [Histogram() for _ in range(4)]

        def work(hist, base):
            for i in range(200):
                hist.record((base + i) / 10000.0)

        threads = [
            threading.Thread(target=work, args=(h, 100 * k))
            for k, h in enumerate(locals_)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = Histogram()
        for h in locals_:
            merged += h
        assert merged.count == 800
        assert merged.percentile(50) > 0

    def test_counter_gauge_registry(self):
        reg = MetricsRegistry()
        reg.counter("reqs").inc()
        reg.counter("reqs").inc(4)
        reg.gauge("depth").set(3)
        reg.gauge("live", fn=lambda: 7)
        reg.histogram("lat").record(0.01)
        snap = reg.snapshot()
        assert snap["counters"]["reqs"] == 5
        assert snap["gauges"]["depth"] == 3.0
        assert snap["gauges"]["live"] == 7.0
        assert snap["histograms"]["lat"]["count"] == 1
        # same name → same instrument
        assert reg.counter("reqs") is reg.counter("reqs")

    def test_counter_thread_safety(self):
        counter = Counter()

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_gauge_callback_wins(self):
        gauge = Gauge()
        gauge.set(2)
        assert gauge.value == 2.0
        gauge.set_fn(lambda: 9)
        assert gauge.value == 9.0


class TestProfileCli:
    def test_profile_emits_valid_trace(self, tmp_path, capsys):
        from repro.credo.cli import main

        out = tmp_path / "profile.json"
        code = main([
            "profile", "examples/family_out.bif",
            "--backend", "cuda-edge",
            "--trace", str(out),
            "--verify-parity",
        ])
        assert code == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(trace) == []
        lanes = trace_lanes(trace)
        assert sum(len(ts) for ts in lanes.values()) >= 3
        modeled = [e for e in trace["traceEvents"]
                   if e.get("ph") == "X" and e.get("name") == "kernel"]
        assert modeled, "no modeled-time kernel spans in the profile trace"
        captured = capsys.readouterr()
        assert "backend" in captured.out
        assert "parity: traced == untraced" in captured.err

    def test_run_trace_flag(self, tmp_path):
        from repro.credo.cli import main

        out = tmp_path / "run.json"
        code = main([
            "run", "examples/family_out.bif",
            "--backend", "c-node", "--trace", str(out), "--top", "0",
        ])
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        # the CLI restored the null tracer
        assert not get_tracer().enabled

    def test_validate_cli(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as tele_main

        tracer = Tracer()
        with tracer.span("x", cat="t"):
            pass
        path = write_chrome_trace(tracer.events, tmp_path / "v.json")
        assert tele_main(["validate", str(path)]) == 0
        assert tele_main(["validate", str(path), "--min-lanes", "99"]) == 1
        assert tele_main(["lanes", str(path)]) == 0
        capsys.readouterr()


class TestServeTelemetry:
    def test_batched_path_accounts_queue_ops(self, small_graph):
        """The micro-batched union path must not drop kernel stats or the
        schedules' queue bookkeeping (the stats-dropping bug)."""
        from repro.serve.batch import run_batched

        config = LoopyConfig(paradigm="node", schedule="work_queue")
        runs, _union = run_batched(
            small_graph, config, [[(0, 0)], [(1, 1)], []],
        )
        assert len(runs) == 3
        total = runs[0].stats
        assert total.nodes_processed > 0
        assert total.flops > 0
        assert total.queue_ops > 0  # previously always zero
        solo = LoopyBP(config).run(small_graph.copy())
        np.testing.assert_allclose(runs[2].beliefs, solo.beliefs, atol=1e-6)

    def test_traced_server_emits_pipeline_spans(self, small_graph):
        from repro.serve import InferenceServer, ServerConfig

        tracer = Tracer()
        with use_tracer(tracer):
            server = InferenceServer(
                ServerConfig(max_batch=4, cache_capacity=8), autostart=True
            )
            try:
                server.register_model("g", small_graph.copy())
                assert server.query("g", {"0": 0}).ok
                assert server.query("g", {"0": 0}).ok  # cache hit
            finally:
                server.stop()
        names = {e.name for e in tracer.events}
        assert {"serve.admit", "serve.queue_wait", "serve.select",
                "serve.run"} <= names
        assert "serve.cache_hit" in names or "serve.engine" in names

    def test_server_metrics_snapshot_shape_unchanged(self, small_graph):
        from repro.serve import InferenceServer, ServerConfig

        server = InferenceServer(ServerConfig(), autostart=True)
        try:
            server.register_model("g", small_graph.copy())
            assert server.query("g", {"1": 1}).ok
            snap = server.stats()
        finally:
            server.stop()
        assert snap["requests_total"] == 1
        assert snap["responses_total"] == 1
        assert set(snap["latency"]) == {"queue_wait", "select", "run", "total"}
        json.dumps(snap)
        # the registry view carries the same counts under serve.*
        reg = server.metrics.registry.snapshot()
        assert reg["counters"]["serve.requests_total"] == 1


class TestHarnessTraceSession:
    def test_disabled_by_default(self):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from harness import trace_session
        finally:
            sys.path.pop(0)
        with trace_session("unit", enabled=False) as tracer:
            assert not tracer.enabled

    def test_enabled_writes_trace(self, tmp_path, monkeypatch):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import harness
        finally:
            sys.path.pop(0)
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        with harness.trace_session("unit", enabled=True) as tracer:
            with tracer.span("work"):
                pass
        out = tmp_path / "unit.trace.json"
        assert out.exists()
        assert validate_chrome_trace(json.loads(out.read_text())) == []

"""Selector serialization round-trips."""

import numpy as np
import pytest

from repro.credo.persistence import load_selector, save_selector
from repro.credo.selector import CredoSelector
from repro.credo.training import TrainingRow
from repro.graphs.synthetic import synthetic_graph


def _rows(n=40, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        size = float(10 ** rng.uniform(2, 6))
        label = "node" if size > 50_000 else "edge"
        feats = np.array(
            [size, rng.uniform(0.1, 1), rng.choice([2.0, 3.0, 32.0]),
             rng.uniform(0, 1), rng.uniform(0, 1)]
        )
        rows.append(TrainingRow("syn", "binary", 2, feats, label, {}, "c-edge", 1.0))
    return rows


class TestPersistence:
    def test_roundtrip_predictions_identical(self, tmp_path):
        selector = CredoSelector().fit(_rows())
        path = tmp_path / "selector.json"
        save_selector(selector, path)
        loaded = load_selector(path)
        for seed, (n, m) in enumerate([(100, 400), (5_000, 20_000), (150_000, 300_000)]):
            g = synthetic_graph(n, m, seed=seed)
            assert loaded.select(g) == selector.select(g)

    def test_roundtrip_probabilities_identical(self, tmp_path):
        selector = CredoSelector().fit(_rows())
        path = tmp_path / "selector.json"
        save_selector(selector, path)
        loaded = load_selector(path)
        X = np.array([r.features for r in _rows(10, seed=3)])
        np.testing.assert_allclose(
            loaded.classifier.predict_proba(X),
            selector.classifier.predict_proba(X),
        )

    def test_artifact_is_json(self, tmp_path):
        import json

        selector = CredoSelector().fit(_rows())
        path = tmp_path / "selector.json"
        save_selector(selector, path)
        doc = json.loads(path.read_text())
        assert doc["format_version"] == 1
        assert len(doc["trees"]) == doc["n_estimators"]

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not fitted"):
            save_selector(CredoSelector(), tmp_path / "x.json")

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_selector(path)

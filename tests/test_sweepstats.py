"""Operation accounting plumbing."""

import pytest

from repro.core.sweepstats import RunStats, SweepStats


class TestSweepStats:
    def test_addition_is_fieldwise(self):
        a = SweepStats(nodes_processed=1, flops=10, atomic_ops=2, random_accesses=4)
        b = SweepStats(nodes_processed=2, flops=5, sequential_bytes=100)
        c = a + b
        assert c.nodes_processed == 3
        assert c.flops == 15
        assert c.atomic_ops == 2
        assert c.random_accesses == 4
        assert c.sequential_bytes == 100
        # operands untouched
        assert a.flops == 10 and b.flops == 5

    def test_iadd(self):
        a = SweepStats(flops=1)
        a += SweepStats(flops=2, queue_ops=7)
        assert a.flops == 3 and a.queue_ops == 7

    def test_total_bytes(self):
        s = SweepStats(sequential_bytes=10, random_bytes=5)
        assert s.total_bytes == 15


class TestRunStats:
    def test_total_aggregates(self):
        rs = RunStats()
        rs.append(SweepStats(flops=5, edges_processed=10))
        rs.append(SweepStats(flops=7, edges_processed=20))
        assert rs.iterations == 2
        assert rs.total.flops == 12
        assert rs.total.edges_processed == 30

    def test_empty(self):
        rs = RunStats()
        assert rs.iterations == 0
        assert rs.total.flops == 0

"""Compiled sweep executors (DESIGN.md §13).

The compiled executor is only admissible because it is *bit-exact*
against the interpreted kernels — the parity grid here is the contract:
schedules × paradigms × evidence × shard counts, posteriors compared
with ``assert_array_equal`` (no tolerance).  The rest covers the layout
registry (conversion, blocked store, footprint truthfulness) and the
plan-time layout autotuner's determinism under a fixed measurement seed.
"""

import numpy as np
import pytest

from repro.core.beliefs import BLOCK_NODES, make_store
from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.core.observation import observe
from repro.core.sharded import ShardedLoopyBP
from repro.kernels import (
    EXECUTORS,
    LAYOUTS,
    autotune_layout,
    make_executor,
    normalize_executor,
    normalize_layout,
    with_layout,
)
from tests.conftest import make_loopy_graph

CRIT = ConvergenceCriterion(threshold=1e-6, max_iterations=60)
SCHEDULES = ("sync", "work_queue", "residual", "relaxed")


def _graph(evidence: bool = False, seed: int = 42):
    g = make_loopy_graph(seed=seed, n_nodes=40, n_edges=90, n_states=3)
    if evidence:
        observe(g, 3, 1)
        observe(g, 17, 0)
    return g


class TestParityGrid:
    @pytest.mark.parametrize("evidence", [False, True], ids=["free", "evidence"])
    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_single_engine_bitwise(self, schedule, paradigm, evidence):
        ref = LoopyBP(
            paradigm=paradigm, schedule=schedule, criterion=CRIT,
            executor="interpreted",
        ).run(_graph(evidence))
        got = LoopyBP(
            paradigm=paradigm, schedule=schedule, criterion=CRIT,
            executor="compiled",
        ).run(_graph(evidence))
        assert got.iterations == ref.iterations
        assert got.converged == ref.converged
        np.testing.assert_array_equal(got.beliefs, ref.beliefs)

    @pytest.mark.parametrize("evidence", [False, True], ids=["free", "evidence"])
    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    def test_four_shards_bitwise(self, paradigm, evidence):
        posteriors = {}
        for executor in EXECUTORS:
            g = _graph(evidence, seed=21)
            engine = ShardedLoopyBP(
                LoopyConfig(paradigm=paradigm, criterion=CRIT, executor=executor)
            )
            result = engine.run_graph(g, n_shards=4, method="bfs")
            posteriors[executor] = (result.iterations, g.beliefs.dense().copy())
        it_ref, ref = posteriors["interpreted"]
        it_got, got = posteriors["compiled"]
        assert it_got == it_ref
        np.testing.assert_array_equal(got, ref)

    def test_damped_sweeps_bitwise(self):
        runs = [
            LoopyBP(
                paradigm="edge", schedule="sync", damping=0.3, criterion=CRIT,
                executor=executor,
            ).run(_graph(True, seed=8))
            for executor in EXECUTORS
        ]
        np.testing.assert_array_equal(runs[0].beliefs, runs[1].beliefs)

    def test_compiled_full_sweeps_fuse_launches(self):
        # the edge paradigm is the interesting case: the interpreted
        # executor launches one kernel per chunk, the compiled one a
        # fixed handful of fused programs per sweep
        interp = LoopyBP(paradigm="edge", schedule="sync", criterion=CRIT,
                         executor="interpreted").run(_graph())
        fused = LoopyBP(paradigm="edge", schedule="sync", criterion=CRIT,
                        executor="compiled").run(_graph())
        assert interp.run_stats.total.fused_launches == 0
        total = fused.run_stats.total
        assert 0 < total.fused_launches < total.kernel_launches


class TestExecutorRegistry:
    def test_aliases_normalize(self):
        assert normalize_executor("fused") == "compiled"
        assert normalize_executor("Interp") == "interpreted"
        assert normalize_executor(None) == "interpreted"
        with pytest.raises(ValueError, match="unknown executor"):
            normalize_executor("jit")

    def test_make_executor_builds_registered_kinds(self):
        from repro.core.state import LoopyState

        state = LoopyState(_graph())
        for name in EXECUTORS:
            ex = make_executor(name, state, paradigm="node")
            assert ex.name == name
            assert ex.build_seconds >= 0.0

    def test_config_normalizes_executor(self):
        assert LoopyConfig(executor="lowered").executor == "compiled"
        with pytest.raises(ValueError):
            LoopyConfig(executor="bogus")


class TestLayouts:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_with_layout_preserves_values(self, layout):
        g = make_loopy_graph(seed=5, n_nodes=33, n_edges=70, n_states=3)
        conv = with_layout(g, layout)
        assert conv.layout == layout
        np.testing.assert_array_equal(conv.beliefs.dense(), g.beliefs.dense())
        np.testing.assert_array_equal(conv.priors.dense(), g.priors.dense())
        # structure is shared, not copied
        assert conv.src is g.src and conv.potentials is g.potentials
        back = with_layout(conv, g.layout)
        np.testing.assert_array_equal(back.beliefs.dense(), g.beliefs.dense())

    def test_with_layout_same_layout_is_identity(self):
        g = make_loopy_graph(seed=5)
        assert with_layout(g, g.layout) is g

    def test_alias_normalization(self):
        assert normalize_layout("struct-of-arrays") == "soa"
        assert normalize_layout("aosoa") == "blocked"
        with pytest.raises(ValueError, match="unknown layout"):
            normalize_layout("csr")

    def test_blocked_store_roundtrip(self):
        rng = np.random.default_rng(0)
        n = 3 * BLOCK_NODES + 5  # deliberately ragged: a partial tail tile
        dims = np.full(n, 4)
        dense = rng.random((n, 4)).astype(np.float32)
        store = make_store(dims, "blocked")
        store.load_dense(dense)
        np.testing.assert_array_equal(store.dense(), dense)
        np.testing.assert_array_equal(store.get(n - 1), dense[n - 1])
        store.set(2, np.array([0.1, 0.2, 0.3, 0.4], dtype=np.float32))
        assert store.dense()[2, 1] == np.float32(0.2)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_memory_footprint_tracks_layout(self, layout):
        g = with_layout(make_loopy_graph(seed=3, n_nodes=50, n_edges=100), layout)
        fp = g.memory_footprint()
        assert fp["beliefs"] == g.beliefs.nbytes()
        assert fp["priors"] == g.priors.nbytes()


class TestAutotuner:
    def test_deterministic_under_seed(self):
        g = make_loopy_graph(seed=7, n_nodes=60, n_edges=120)
        first = autotune_layout(g, seed=7)
        second = autotune_layout(g, seed=7)
        assert first.layout == second.layout
        assert first.scores == second.scores
        assert first.layout in LAYOUTS
        assert set(first.scores) == set(LAYOUTS)

    def test_decision_is_auditable(self):
        decision = autotune_layout(make_loopy_graph(seed=7), seed=0)
        payload = decision.as_dict()
        assert payload["layout"] == decision.layout
        assert 0.0 <= payload["locality"] <= 1.0


class TestPlanIntegration:
    def test_qualified_suffix_grammar(self):
        from repro.credo.runner import ExecutionPlan

        assert ExecutionPlan("c-node", "sync").qualified == "c-node:sync"
        plan = ExecutionPlan("c-node", "sync", executor="compiled", layout="soa")
        assert plan.qualified == "c-node:sync!compiled%soa"
        sharded = ExecutionPlan(
            "sharded", "sync", shards=4, partitioner="bfs",
            policy="async", staleness=2, executor="compiled",
        )
        assert sharded.qualified == "sharded:sync@4xbfs+async~2!compiled"

    def test_qualified_spec_round_trips(self):
        from repro.credo.runner import Credo, parse_qualified

        assert parse_qualified("c-edge:sync!compiled%soa") == {
            "backend": "c-edge", "schedule": "sync",
            "executor": "compiled", "layout": "soa",
        }
        assert parse_qualified("sharded:sync@4xbfs+async~2") == {
            "backend": "sharded", "schedule": "sync", "shards": 4,
            "partitioner": "bfs", "policy": "async", "staleness": 2,
        }
        credo = Credo()
        g = _graph(True, seed=11)
        plan = credo.plan(g, backend="c-node:sync!compiled%soa")
        assert (plan.backend, plan.schedule) == ("c-node", "sync")
        assert (plan.executor, plan.layout) == ("compiled", "soa")
        # the rendered spelling plans back to the same decision
        again = credo.plan(g, backend=plan.qualified)
        assert again == plan

    def test_credo_run_accepts_qualified_spec(self):
        from repro.credo.runner import Credo

        credo = Credo()
        g = _graph(True, seed=13)
        ref = credo.run(g.copy(), backend="c-edge", schedule="sync")
        got = credo.run(g.copy(), backend="c-edge:sync!compiled")
        assert got.iterations == ref.iterations
        np.testing.assert_array_equal(
            np.asarray(got.beliefs), np.asarray(ref.beliefs)
        )
        assert got.detail.get("executor") == "compiled"

    def test_selector_sizes_the_lowering(self):
        from repro.credo.selector import CredoSelector

        sel = CredoSelector()
        small = make_loopy_graph(seed=1, n_nodes=20, n_edges=30)
        assert sel.select_executor(small, "c-node") == "interpreted"
        assert sel.select_executor(small, "reference") == "interpreted"

    def test_credo_run_compiled_matches_default(self):
        from repro.credo.runner import Credo

        credo = Credo()
        g = _graph(True, seed=31)
        ref = credo.run(g.copy(), backend="c-node")
        got = credo.run(g.copy(), backend="c-node", executor="compiled",
                        layout="auto")
        assert got.iterations == ref.iterations
        np.testing.assert_array_equal(
            np.asarray(got.beliefs), np.asarray(ref.beliefs)
        )
        assert got.detail.get("executor") == "compiled"

"""Evidence clamping (paper §2.1)."""

import numpy as np
import pytest

from repro.core import LoopyBP, exact_marginals, observe, clear_observations
from tests.conftest import make_tree_graph


class TestObserve:
    def test_clamps_to_one_hot(self, tree_graph):
        observe(tree_graph, 2, 1)
        np.testing.assert_allclose(tree_graph.beliefs.get(2), [0.0, 1.0])
        assert tree_graph.observed[2]
        assert tree_graph.observed_state[2] == 1

    def test_observe_by_name(self, tree_graph):
        tree_graph.node_names[3] = "dog_out"
        observe(tree_graph, "dog_out", 0)
        assert tree_graph.observed[3]

    def test_unknown_name_raises(self, tree_graph):
        with pytest.raises(KeyError):
            observe(tree_graph, "nonexistent", 0)

    def test_state_out_of_range(self, tree_graph):
        with pytest.raises(ValueError):
            observe(tree_graph, 0, 5)

    def test_node_out_of_range(self, tree_graph):
        with pytest.raises(IndexError):
            observe(tree_graph, 99, 0)

    def test_clear_restores_priors(self, tree_graph):
        prior = tree_graph.priors.get(1).copy()
        observe(tree_graph, 1, 0)
        clear_observations(tree_graph)
        np.testing.assert_allclose(tree_graph.beliefs.get(1), prior)
        assert not tree_graph.observed.any()


class TestEvidencePropagation:
    def test_observation_shifts_neighbour_posterior(self):
        g = make_tree_graph(seed=4)
        base = LoopyBP().run(g.copy()).beliefs
        g_obs = g.copy()
        observe(g_obs, 0, 0)
        shifted = LoopyBP().run(g_obs).beliefs
        # node 0's neighbours must move toward compatibility with state 0
        assert not np.allclose(base[1], shifted[1], atol=1e-4)

    def test_observed_node_stays_clamped_through_bp(self):
        g = make_tree_graph(seed=5)
        observe(g, 2, 1)
        result = LoopyBP().run(g)
        np.testing.assert_allclose(result.beliefs[2], [0.0, 1.0], atol=1e-6)

    def test_posteriors_match_exact_under_evidence(self):
        g = make_tree_graph(seed=6)
        observe(g, 4, 0)
        expected = exact_marginals(g)
        result = LoopyBP().run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-3)

    def test_multiple_observations(self):
        g = make_tree_graph(seed=7)
        observe(g, 1, 0)
        observe(g, 5, 1)
        expected = exact_marginals(g)
        result = LoopyBP().run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-3)

"""The report aggregator."""

import pytest

from repro.report import collect_results, main, render_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "E01_table1.txt").write_text("table one\nrow\n")
    (d / "E02_algo.txt").write_text("table two\n")
    (d / "EXT_ablation.txt").write_text("extension table\n")
    return d


class TestReport:
    def test_collect_sorted(self, results_dir):
        results = collect_results(results_dir)
        assert list(results) == ["E01_table1", "E02_algo", "EXT_ablation"]
        assert results["E01_table1"] == "table one\nrow"

    def test_render_groups_by_experiment(self, results_dir):
        report = render_report(results_dir)
        assert "## E01" in report
        assert "## EXT" in report
        assert "table one" in report

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")

    def test_main_writes_report(self, results_dir, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main([str(results_dir), str(out)]) == 0
        assert out.exists()
        assert "experiment tables" in capsys.readouterr().out

    def test_main_error_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 1
        assert "error" in capsys.readouterr().err

"""End-to-end integration: the full Credo pipeline across subsystems."""

import numpy as np
import pytest

from repro.core import LoopyBP, exact_marginals, junction_tree_marginals, observe
from repro.core.convergence import ConvergenceCriterion
from repro.credo import Credo
from repro.credo.persistence import load_selector, save_selector
from repro.graphs import build_graph
from repro.io import load_graph, parse_bif, write_mtx_graph
from repro.io.network import network_to_belief_graph
from repro.io.scan import scan_mtx_stats
from tests.conftest import FAMILY_OUT_BIF


class TestFullPipeline:
    def test_generate_write_scan_select_run(self, tmp_path):
        """suite generator -> MTX files -> streaming metadata -> selector
        -> backend -> posteriors, with no step bypassed."""
        graph, _ = build_graph("1kx4k", "virus", profile="smoke", seed=3)
        nodes, edges = tmp_path / "v.nodes", tmp_path / "v.edges"
        write_mtx_graph(graph, nodes, edges)

        stats = scan_mtx_stats(nodes, edges)
        assert stats.n_beliefs == 3

        credo = Credo(device="gtx1070")
        choice = credo.select_file(nodes, edges)
        assert choice == "c-edge"  # 1k nodes: the paper's small-graph rule

        result = credo.run_file(nodes, edges)
        assert result.backend == choice
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)

    def test_bif_to_posterior_with_evidence(self, tmp_path):
        """BIF text -> network -> pairwise graph -> evidence -> BP,
        validated against both exact oracles."""
        net = parse_bif(FAMILY_OUT_BIF)
        graph = network_to_belief_graph(net)
        observe(graph, "light_on", 0)
        observe(graph, "hear_bark", 1)
        exact = exact_marginals(graph)
        jt = junction_tree_marginals(graph)
        np.testing.assert_allclose(jt, exact, atol=1e-9)
        result = LoopyBP(criterion=ConvergenceCriterion(1e-7, 300)).run(graph)
        np.testing.assert_allclose(result.beliefs, exact, atol=1e-3)

    def test_trained_selector_roundtrips_through_disk(self, tmp_path):
        """train (smoke scale) -> save -> load -> identical dispatch."""
        credo = Credo(device="gtx1070")
        credo.train(
            profile="smoke",
            subset=("10x40", "1kx4k", "10kx40k"),
            use_cases=("binary",),
        )
        path = tmp_path / "selector.json"
        save_selector(credo.selector, path)
        restored = Credo(device="gtx1070", selector=load_selector(path))
        for abbrev in ("10x40", "10kx40k"):
            g, _ = build_graph(abbrev, "binary", profile="smoke")
            assert restored.select(g) == credo.select(g)

    def test_file_formats_agree_end_to_end(self, tmp_path):
        """The same network through BIF and MTX paths yields the same
        posteriors."""
        from repro.io import write_bif
        from repro.io.mtx import read_mtx_graph

        net = parse_bif(FAMILY_OUT_BIF)
        bif_path = tmp_path / "net.bif"
        write_bif(net, bif_path)
        g_bif = load_graph(bif_path)

        # family-out is uniform-width, so it can travel as MTX too
        nodes, edges = tmp_path / "n.nodes", tmp_path / "n.edges"
        write_mtx_graph(g_bif, nodes, edges)
        g_mtx = read_mtx_graph(nodes, edges)

        crit = ConvergenceCriterion(1e-7, 300)
        r1 = LoopyBP(criterion=crit).run(g_bif.copy())
        r2 = LoopyBP(criterion=crit).run(g_mtx)
        np.testing.assert_allclose(r1.beliefs, r2.beliefs, atol=1e-4)

"""BeliefGraph construction and adjacency indices (paper §3.3, §3.4)."""

import numpy as np
import pytest

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential, random_potential


def _priors(n, b=2, seed=0):
    return np.random.default_rng(seed).dirichlet(np.ones(b), size=n)


class TestFromUndirected:
    def test_expands_to_directed_pairs(self):
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8)
        )
        assert g.n_edges == 4
        # each directed edge's reverse flips endpoints
        for e in range(g.n_edges):
            r = g.reverse_edge[e]
            assert g.src[e] == g.dst[r] and g.dst[e] == g.src[r]

    def test_drops_self_loops(self):
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 0], [0, 1]]), attractive_potential(2, 0.8)
        )
        assert g.n_edges == 2

    def test_dedupes_undirected_duplicates(self):
        g = BeliefGraph.from_undirected(
            _priors(3),
            np.array([[0, 1], [1, 0], [0, 1]]),
            attractive_potential(2, 0.8),
        )
        assert g.n_edges == 2

    def test_asymmetric_shared_potential_transposed_on_reverse(self):
        rng = np.random.default_rng(0)
        mat = random_potential(2, rng)  # not symmetric in general
        assert not np.allclose(mat, mat.T)
        g = BeliefGraph.from_undirected(_priors(2), np.array([[0, 1]]), mat)
        np.testing.assert_allclose(g.potentials.matrix(0), mat, atol=1e-6)
        np.testing.assert_allclose(g.potentials.matrix(1), mat.T, atol=1e-6)

    def test_symmetric_shared_potential_stays_shared(self):
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8)
        )
        assert g.potentials.shared

    def test_per_edge_potentials(self):
        mats = np.stack([random_potential(2, np.random.default_rng(s)) for s in range(2)])
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), per_edge_potentials=mats
        )
        assert not g.potentials.shared
        np.testing.assert_allclose(g.potentials.matrix(0), mats[0], atol=1e-6)
        np.testing.assert_allclose(g.potentials.matrix(1), mats[0].T, atol=1e-6)

    def test_requires_some_potential(self):
        with pytest.raises(ValueError, match="potential"):
            BeliefGraph.from_undirected(_priors(2), np.array([[0, 1]]))


class TestAdjacency:
    def test_csr_in_edges(self):
        g = BeliefGraph.from_undirected(
            _priors(4), np.array([[0, 2], [1, 2], [3, 2]]), attractive_potential(2, 0.8)
        )
        into_2 = g.in_edges(2)
        assert sorted(g.src[into_2].tolist()) == [0, 1, 3]
        assert set(g.parents(2).tolist()) == {0, 1, 3}

    def test_out_edges_and_children(self):
        g = BeliefGraph.from_undirected(
            _priors(4), np.array([[0, 1], [0, 2], [0, 3]]), attractive_potential(2, 0.8)
        )
        assert set(g.children(0).tolist()) == {1, 2, 3}

    def test_degrees_sum_to_edges(self):
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 30, size=(60, 2))
        g = BeliefGraph.from_undirected(_priors(30), edges, attractive_potential(2, 0.8))
        assert g.in_degree().sum() == g.n_edges
        assert g.out_degree().sum() == g.n_edges
        # undirected expansion: in == out per node
        np.testing.assert_array_equal(g.in_degree(), g.out_degree())

    def test_endpoint_range_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            BeliefGraph(
                _priors(2), np.array([0]), np.array([5]), attractive_potential(2, 0.8)
            )


class TestState:
    def test_priors_normalized_on_ingest(self):
        raw = np.array([[2.0, 2.0], [1.0, 3.0]])
        g = BeliefGraph.from_undirected(raw, np.array([[0, 1]]), attractive_potential(2, 0.8))
        np.testing.assert_allclose(g.priors.dense().sum(axis=1), 1.0, atol=1e-6)

    def test_reset_beliefs_restores_priors(self):
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8)
        )
        g.beliefs.set(0, np.array([1.0, 0.0], dtype=np.float32))
        g.reset_beliefs()
        np.testing.assert_allclose(g.beliefs.get(0), g.priors.get(0))

    def test_copy_isolates_beliefs_and_observations(self):
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8)
        )
        clone = g.copy()
        clone.beliefs.set(0, np.array([1.0, 0.0], dtype=np.float32))
        clone.observed[1] = True
        assert not np.allclose(g.beliefs.get(0), clone.beliefs.get(0))
        assert not g.observed[1]

    def test_metadata_fields(self):
        g = BeliefGraph.from_undirected(
            _priors(5), np.array([[0, 1], [1, 2], [2, 3]]), attractive_potential(2, 0.8)
        )
        meta = g.metadata()
        assert meta["n_nodes"] == 5
        assert meta["n_edges"] == 6  # directed
        assert meta["n_beliefs"] == 2

    def test_memory_footprint_includes_all_parts(self):
        g = BeliefGraph.from_undirected(
            _priors(10), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8)
        )
        fp = g.memory_footprint()
        assert set(fp) == {
            "beliefs", "priors", "potentials", "adjacency", "metadata", "reserved",
        }
        assert all(v > 0 for k, v in fp.items() if k not in ("metadata", "reserved"))
        # the lazy caches are empty until first use, then counted
        assert fp["metadata"] == 0
        # a batch-constructed graph is tightly packed; only the streaming
        # builder's amortized-growth slack lands in "reserved"
        assert fp["reserved"] == 0
        g.node_id("3")  # builds the name -> id map
        g._feature_cache["features"] = np.zeros(5, dtype=np.float64)
        fp2 = g.memory_footprint()
        assert fp2["metadata"] > 0
        for key in ("beliefs", "priors", "potentials", "adjacency"):
            assert fp2[key] == fp[key]

    def test_node_names_default_and_custom(self):
        g = BeliefGraph.from_undirected(
            _priors(2), np.array([[0, 1]]), attractive_potential(2, 0.8),
            node_names=["alpha", "beta"],
        )
        assert g.node_names == ["alpha", "beta"]
        g2 = BeliefGraph.from_undirected(
            _priors(2), np.array([[0, 1]]), attractive_potential(2, 0.8)
        )
        assert g2.node_names == ["0", "1"]

    def test_repr_mentions_sizes(self):
        g = BeliefGraph.from_undirected(
            _priors(2), np.array([[0, 1]]), attractive_potential(2, 0.8)
        )
        assert "n_nodes=2" in repr(g)


class TestNameLookupAndFeatureCache:
    """Serving-path satellites: lazy name->id map, memoized features."""

    def _named(self):
        return BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8),
            node_names=["a", "b", "c"],
        )

    def test_node_id_resolves_names_and_passes_ints(self):
        g = self._named()
        assert g.node_id("b") == 1
        assert g.node_id(2) == 2
        with pytest.raises(KeyError):
            g.node_id("zz")

    def test_duplicate_names_resolve_to_first_occurrence(self):
        g = BeliefGraph.from_undirected(
            _priors(3), np.array([[0, 1], [1, 2]]), attractive_potential(2, 0.8),
            node_names=["x", "x", "y"],
        )
        assert g.node_id("x") == g.node_names.index("x") == 0

    def test_copy_shares_name_map(self):
        g = self._named()
        g.node_id("a")  # force the lazy build
        clone = g.copy()
        assert clone._name_to_id is g._name_to_id
        assert clone.node_id("c") == 2

    def test_feature_memoization_and_invalidation(self):
        from repro.credo.features import extract_features

        g = self._named()
        first = extract_features(g)
        assert "base" in g._feature_cache
        cached = g._feature_cache["base"]
        second = extract_features(g)
        np.testing.assert_array_equal(first, second)
        assert g._feature_cache["base"] is cached  # no recompute
        g.invalidate_metadata_cache()
        assert g._feature_cache == {} and g._name_to_id is None

    def test_feature_cache_shared_through_copy(self):
        from repro.credo.features import extract_features

        g = self._named()
        extract_features(g)
        clone = g.copy()
        assert clone._feature_cache is g._feature_cache

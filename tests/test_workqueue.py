"""Work queues of unconverged elements (paper §3.5)."""

import numpy as np
import pytest

from repro.core.scheduler import WorkQueue


class TestWorkQueue:
    def test_starts_full(self):
        q = WorkQueue(5, 0.1)
        np.testing.assert_array_equal(q.active, np.arange(5))
        assert len(q) == 5 and not q.empty

    def test_repopulate_keeps_unconverged(self):
        q = WorkQueue(4, 0.1)
        q.repopulate(np.array([0.5, 0.01, 0.2, 0.05]))
        np.testing.assert_array_equal(q.active, [0, 2])

    def test_repopulate_clears_when_all_converged(self):
        q = WorkQueue(3, 0.1)
        q.repopulate(np.zeros(3))
        assert q.empty

    def test_neighbours_are_requeued(self):
        q = WorkQueue(6, 0.1)
        q.repopulate(np.array([0.5, 0, 0, 0, 0, 0]), neighbours_of_dirty=np.array([3, 4]))
        np.testing.assert_array_equal(q.active, [0, 3, 4])

    def test_neighbours_deduplicated(self):
        q = WorkQueue(6, 0.1)
        q.repopulate(
            np.array([0.5, 0, 0, 0, 0, 0]),
            neighbours_of_dirty=np.array([0, 0, 3, 3, 3]),
        )
        np.testing.assert_array_equal(q.active, [0, 3])

    def test_delta_alignment_enforced(self):
        q = WorkQueue(4, 0.1)
        with pytest.raises(ValueError, match="align"):
            q.repopulate(np.zeros(3))

    def test_push_accounting(self):
        q = WorkQueue(4, 0.1)
        q.repopulate(np.array([0.5, 0.5, 0, 0]))
        assert q.pushes == 2 and q.rounds == 1
        q.repopulate(np.array([0.5, 0]))
        assert q.pushes == 3 and q.rounds == 2

    def test_reset(self):
        q = WorkQueue(4, 0.1)
        q.repopulate(np.zeros(4))
        q.reset()
        assert len(q) == 4 and q.pushes == 0

    def test_shrinking_active_set(self):
        """The §3.5 premise: most elements converge after a few rounds,
        so the queue shrinks monotonically for decaying deltas."""
        q = WorkQueue(100, 1e-3)
        deltas = np.linspace(1.0, 0.0, 100)
        sizes = []
        for _ in range(5):
            deltas = deltas[deltas >= q.element_threshold] * 0.3
            pass_deltas = np.linspace(1.0, 0.0, len(q.active)) * (0.3 ** len(sizes))
            q.repopulate(pass_deltas)
            sizes.append(len(q))
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    @pytest.mark.parametrize("n,thr", [(-1, 0.1), (3, 0.0), (3, -0.5)])
    def test_validation(self, n, thr):
        with pytest.raises(ValueError):
            WorkQueue(n, thr)

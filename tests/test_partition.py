"""The graph-partition layer and sharded execution (DESIGN.md §9).

The headline guarantee: ``ShardedLoopyBP`` under the synchronous schedule
computes the *same posteriors* as unsharded sync BP — for every
partitioner, any shard count, both paradigms, with or without evidence —
because sharding only changes where rows live, never the update order a
Jacobi sweep observes.
"""

import numpy as np
import pytest

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.core.observation import observe
from repro.core.potentials import attractive_potential
from repro.core.sharded import ShardedGraph, ShardedLoopyBP
from repro.partition import (
    PARTITIONERS,
    Partition,
    make_partition,
    normalize_partitioner,
)

PARITY_TOL = 1e-6


def _graph(n=60, extra=150, b=3, seed=0, names=False):
    rng = np.random.default_rng(seed)
    priors = rng.dirichlet(np.ones(b), size=n)
    spine = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    rand = rng.integers(0, n, size=(extra, 2))
    edges = np.unique(np.sort(np.concatenate([spine, rand]), axis=1), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    return BeliefGraph.from_undirected(
        priors, edges, attractive_potential(b, 0.7),
        node_names=[f"v{i}" for i in range(n)] if names else None,
    )


def _sync_config(paradigm, threshold=1e-5, max_iterations=200):
    return LoopyConfig(
        paradigm=paradigm,
        schedule="sync",
        # one chunk = pure Jacobi: the edge paradigm then matches node
        # sync numerically, shard-invariantly
        edge_chunks=1,
        criterion=ConvergenceCriterion(
            threshold=threshold, max_iterations=max_iterations
        ),
    )


class TestPartitioners:
    @pytest.mark.parametrize("method", PARTITIONERS)
    def test_assignment_covers_all_nodes(self, method):
        g = _graph()
        part = make_partition(g, 4, method)
        assert part.assignment.shape == (g.n_nodes,)
        assert part.assignment.min() >= 0 and part.assignment.max() < 4
        assert part.n_shards == 4
        assert part.method == method

    @pytest.mark.parametrize("method", PARTITIONERS)
    def test_measured_cut_matches_manual_count(self, method):
        g = _graph()
        part = make_partition(g, 3, method)
        manual = int((part.assignment[g.src] != part.assignment[g.dst]).sum())
        assert part.cut_edges == manual
        assert part.cut_fraction == pytest.approx(manual / g.n_edges)

    @pytest.mark.parametrize("method", PARTITIONERS)
    def test_balance_is_straggler_factor(self, method):
        g = _graph()
        part = make_partition(g, 4, method)
        loads = np.bincount(part.assignment[g.dst], minlength=4)
        ideal = g.n_edges / 4
        assert part.balance == pytest.approx(loads.max() / ideal)
        assert part.balance >= 1.0

    def test_single_shard_has_no_cut(self):
        g = _graph()
        part = make_partition(g, 1, "bfs")
        assert part.cut_edges == 0 and part.cut_fraction == 0.0
        assert np.all(part.assignment == 0)

    def test_locality_aware_beats_hash_on_spine(self):
        # a long path graph: contiguous/region partitioners cut O(k)
        # edges, random hash cuts about half of them
        n = 200
        priors = np.random.default_rng(0).dirichlet(np.ones(2), size=n)
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        g = BeliefGraph.from_undirected(priors, edges, attractive_potential(2, 0.8))
        hash_cut = make_partition(g, 4, "hash").cut_fraction
        for smart in ("range", "bfs", "greedy"):
            assert make_partition(g, 4, smart).cut_fraction < hash_cut / 3

    def test_aliases_and_unknown(self):
        assert normalize_partitioner("random") == "hash"
        assert normalize_partitioner("region") == "bfs"
        assert normalize_partitioner("ldg") == "greedy"
        with pytest.raises(ValueError, match="partitioner"):
            normalize_partitioner("metis")

    def test_stats_dict(self):
        part = make_partition(_graph(), 2, "greedy")
        stats = part.stats()
        assert {"method", "n_shards", "cut_fraction", "balance"} <= set(stats)


class TestShardedGraphStructure:
    def test_owned_nodes_partition_the_graph(self):
        g = _graph()
        sharded = ShardedGraph.build(g, n_shards=4, method="bfs")
        owned = np.concatenate([sh.owned_nodes for sh in sharded.shards])
        assert sorted(owned.tolist()) == list(range(g.n_nodes))

    def test_owned_edges_partition_the_edges(self):
        g = _graph()
        sharded = ShardedGraph.build(g, n_shards=3, method="hash")
        owned = np.concatenate([sh.owned_edges for sh in sharded.shards])
        assert sorted(owned.tolist()) == list(range(g.n_edges))

    def test_exchange_profile_accounts_boundary_rows(self):
        g = _graph()
        sharded = ShardedGraph.build(g, n_shards=4, method="bfs")
        profile = sharded.exchange_profile()
        row_bytes = 4 * g.n_states
        assert profile["bytes_per_round"] == profile["boundary_rows"] * row_bytes
        assert profile["max_device_bytes"] <= profile["bytes_per_round"]
        # single shard: nothing crosses
        solo = ShardedGraph.build(g, n_shards=1)
        assert solo.exchange_profile()["bytes_per_round"] == 0

    def test_instance_isolates_evidence_from_master(self):
        g = _graph(names=True)
        sharded = ShardedGraph.build(g, n_shards=2, method="bfs")
        view = sharded.instance()
        view.observe("v5", 1)
        assert not g.observed.any()
        assert not any(sh.graph.observed.any() for sh in sharded.shards)

    def test_observe_unknown_node_raises(self):
        sharded = ShardedGraph.build(_graph(names=True), n_shards=2)
        with pytest.raises(KeyError):
            sharded.observe("nope", 0)


class TestShardedParity:
    """Posteriors match unsharded sync BP to 1e-6 (usually bit-exact)."""

    @pytest.mark.parametrize("method", PARTITIONERS)
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_node_paradigm(self, method, n_shards):
        g = _graph()
        expected = LoopyBP(_sync_config("node")).run(g.copy()).beliefs
        sharded = ShardedGraph.build(g.copy(), n_shards=n_shards, method=method)
        result = ShardedLoopyBP(_sync_config("node")).run(sharded)
        assert np.abs(result.beliefs - expected).max() <= PARITY_TOL

    @pytest.mark.parametrize("method", PARTITIONERS)
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_edge_paradigm(self, method, n_shards):
        g = _graph()
        expected = LoopyBP(_sync_config("edge")).run(g.copy()).beliefs
        sharded = ShardedGraph.build(g.copy(), n_shards=n_shards, method=method)
        result = ShardedLoopyBP(_sync_config("edge")).run(sharded)
        assert np.abs(result.beliefs - expected).max() <= PARITY_TOL

    @pytest.mark.parametrize("method", PARTITIONERS)
    def test_with_observed_evidence(self, method):
        g = _graph(names=True)
        reference = g.copy()
        observe(reference, "v3", 1)
        observe(reference, "v41", 0)
        expected = LoopyBP(_sync_config("node")).run(reference).beliefs

        sharded = ShardedGraph.build(g, n_shards=4, method=method)
        view = sharded.instance()
        view.observe("v3", 1)
        view.observe("v41", 0)
        result = ShardedLoopyBP(_sync_config("node")).run(view)
        assert np.abs(result.beliefs - expected).max() <= PARITY_TOL

    def test_thread_pool_matches_serial(self):
        g = _graph()
        sharded = ShardedGraph.build(g, n_shards=4, method="greedy")
        serial = ShardedLoopyBP(_sync_config("node")).run(sharded.instance())
        pooled = ShardedLoopyBP(_sync_config("node"), max_workers=4).run(
            sharded.instance()
        )
        np.testing.assert_array_equal(serial.beliefs, pooled.beliefs)
        assert serial.iterations == pooled.iterations

    def test_writes_back_to_source_graph(self):
        g = _graph()
        sharded = ShardedGraph.build(g, n_shards=2, method="bfs")
        result = ShardedLoopyBP(_sync_config("node")).run(sharded)
        np.testing.assert_allclose(g.beliefs.dense(), result.beliefs, atol=1e-6)

    @pytest.mark.parametrize("schedule", ["work_queue", "residual", "relaxed"])
    def test_priority_schedules_reach_the_same_fixed_point(self, schedule):
        # the priority schedules are approximate by design; they must
        # still land on the sync fixed point within the convergence
        # threshold's tolerance
        g = _graph()
        cfg = _sync_config("node", threshold=1e-5)
        expected = LoopyBP(cfg).run(g.copy()).beliefs
        sharded = ShardedGraph.build(g.copy(), n_shards=4, method="bfs")
        sched_cfg = LoopyConfig(
            paradigm="node", schedule=schedule, criterion=cfg.criterion
        )
        result = ShardedLoopyBP(sched_cfg).run(sharded)
        assert np.abs(result.beliefs - expected).max() < 1e-3

    def test_exchange_bytes_accounted(self):
        g = _graph()
        sharded = ShardedGraph.build(g, n_shards=4, method="hash")
        result = ShardedLoopyBP(_sync_config("node")).run(sharded)
        profile = sharded.exchange_profile()
        assert result.exchange_bytes > 0
        assert result.exchange_bytes == profile["bytes_per_round"] * result.iterations
        assert len(result.per_shard_stats) == result.iterations


class TestShardedBackends:
    def test_sharded_cpu_backend_detail(self):
        from repro.backends import get_backend

        g = _graph()
        ref = get_backend("c-node").run(g.copy(), schedule="sync")
        be = get_backend("sharded", n_shards=4, partitioner="bfs")
        result = be.run(g.copy(), schedule="sync")
        assert np.abs(result.beliefs - ref.beliefs).max() <= PARITY_TOL
        detail = result.detail
        assert detail["n_shards"] == 4 and detail["partitioner"] == "bfs"
        assert 0.0 <= detail["cut_fraction"] < 1.0
        assert detail["shard_balance"] >= 1.0
        assert detail["exchange_bytes"] > 0
        assert result.modeled_time > 0

    def test_multigpu_backend_matches_and_costs_exchange(self):
        from repro.backends import get_backend

        g = _graph()
        ref = get_backend("c-node").run(g.copy(), schedule="sync")
        be = get_backend("cuda-multi", n_devices=4, interconnect="nvlink")
        result = be.run(g.copy(), schedule="sync")
        assert np.abs(result.beliefs - ref.beliefs).max() <= PARITY_TOL
        assert result.detail["n_devices"] == 4
        assert result.detail["exchange_bytes"] > 0
        assert 0.0 < result.detail["exchange_fraction"] < 1.0

    def test_pcie_exchange_costs_more_than_nvlink(self):
        from repro.backends import get_backend

        g = _graph(n=120, extra=400)
        kw = dict(n_devices=4, partitioner="hash", seed=0)
        nvlink = get_backend("cuda-multi", interconnect="nvlink", **kw).run(
            g.copy(), schedule="sync"
        )
        pcie = get_backend("cuda-multi", interconnect="pcie", **kw).run(
            g.copy(), schedule="sync"
        )
        assert pcie.detail["exchange_fraction"] > nvlink.detail["exchange_fraction"]
        assert pcie.modeled_time > nvlink.modeled_time

    def test_distributed_backend_measures_partition(self):
        from repro.backends.distributed import DistributedBackend

        g = _graph()
        result = DistributedBackend(partitioner="bfs").run(g)
        assert result.detail["measured_partition"] is True
        assert result.detail["partitioner"] == "bfs"
        assert result.detail["shard_balance"] >= 1.0
        assert 0.0 <= result.detail["edge_cut_fraction"] <= 1.0

    def test_distributed_edge_cut_fraction_deprecated(self):
        from repro.backends.distributed import DistributedBackend

        with pytest.warns(DeprecationWarning, match="edge_cut_fraction"):
            be = DistributedBackend(edge_cut_fraction=0.05)
        result = be.run(_graph())
        assert result.detail["edge_cut_fraction"] == 0.05
        assert result.detail["measured_partition"] is False


class TestCredoSharding:
    def test_plan_freezes_sharding(self):
        from repro.credo.runner import Credo

        g = _graph()
        plan = Credo().plan(g, backend="c-node:sync", shards=4, partitioner="greedy")
        assert plan.sharded and plan.shards == 4
        assert plan.partitioner == "greedy"
        assert plan.qualified == "c-node:sync@4xgreedy"

    def test_plan_paradigm_for_unsuffixed_backends(self):
        from repro.credo.runner import ExecutionPlan

        assert ExecutionPlan("c-edge", "sync").paradigm == "edge"
        # backends without a -node/-edge suffix sweep per node
        assert ExecutionPlan("cuda-multi", "sync", shards=4).paradigm == "node"
        assert ExecutionPlan("sharded", "sync", shards=2).paradigm == "node"

    def test_run_with_shards_matches_unsharded(self):
        from repro.credo.runner import Credo

        g = _graph()
        credo = Credo()
        base = credo.run(g.copy(), backend="c-node", schedule="sync")
        sharded = credo.run(
            g.copy(), backend="c-node:sync", shards=3, partitioner="bfs"
        )
        assert np.abs(sharded.beliefs - base.beliefs).max() <= PARITY_TOL
        assert sharded.detail["n_shards"] == 3

    def test_selector_keeps_small_graphs_unsharded(self):
        from repro.credo.selector import SHARD_AUTO_MIN_EDGES, CredoSelector

        sel = CredoSelector()
        assert sel.select_sharding(_graph()) == 1
        assert SHARD_AUTO_MIN_EDGES >= 100_000  # deliberately conservative

    def test_partition_features_memoized(self):
        from repro.credo.features import extract_partition_features

        g = _graph()
        feats = extract_partition_features(g, 4, "bfs")
        assert feats.shape == (2,)
        assert "partition:bfs:4" in g._feature_cache
        again = extract_partition_features(g, 4, "bfs")
        np.testing.assert_array_equal(feats, again)


class TestServeSharded:
    def test_sharded_server_matches_unsharded(self):
        from repro.serve import InferenceServer, ServerConfig

        g = _graph(names=True)
        sharded_cfg = ServerConfig(
            shards=2, partitioner="bfs", backend="c-node", schedule="sync"
        )
        plain_cfg = ServerConfig(backend="c-node", schedule="sync", max_batch=1)
        with InferenceServer(sharded_cfg) as s1, InferenceServer(plain_cfg) as s2:
            s1.register_model("m", g.copy())
            s2.register_model("m", g.copy())
            desc = s1.registry.describe()[0]
            assert desc["shards"] == 2 and desc["partitioner"] == "bfs"
            assert desc["shard_balance"] >= 1.0
            r1 = s1.query("m", {"v3": 1})
            r2 = s2.query("m", {"v3": 1})
            assert r1.ok and r2.ok
            for name in r1.posteriors:
                np.testing.assert_allclose(
                    r1.posteriors[name], r2.posteriors[name], atol=PARITY_TOL
                )
            # cache round-trip on the sharded path
            assert s1.query("m", {"v3": 1}).cached
        assert s1.engine._pool is None  # released on stop()

    def test_config_validates_sharding_knobs(self):
        from repro.serve import ServerConfig

        with pytest.raises(ValueError, match="shards"):
            ServerConfig(shards=0)
        with pytest.raises(ValueError, match="shard_threads"):
            ServerConfig(shard_threads=0)
        with pytest.raises(ValueError, match="partitioner"):
            ServerConfig(partitioner="metis")


class TestDeprecationShims:
    """The repro-2.0 shim modules are gone; the canonical homes serve."""

    def test_workqueue_module_is_gone(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.workqueue", None)
        with pytest.raises(ImportError):
            importlib.import_module("repro.core.workqueue")
        from repro.core.scheduler import WorkQueue  # canonical home

        assert WorkQueue is not None

    def test_residual_module_is_gone(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.residual", None)
        with pytest.raises(ImportError):
            importlib.import_module("repro.core.residual")
        from repro.core.scheduler import ResidualBP  # canonical home

        assert ResidualBP is not None


def test_partition_repr_mentions_cut():
    part = make_partition(_graph(), 4, "bfs")
    assert "cut" in repr(part)
    assert isinstance(part, Partition)

"""Streaming metadata scanning (paper §3.7, metadata-only selection)."""

import numpy as np
import pytest

from repro.credo import Credo
from repro.credo.features import extract_features
from repro.io.mtx import MtxFormatError, write_mtx_graph
from repro.io.scan import scan_mtx_stats
from tests.conftest import make_loopy_graph


@pytest.fixture
def written(tmp_path):
    g = make_loopy_graph(seed=101, n_nodes=40, n_edges=90)
    paths = tmp_path / "g.nodes", tmp_path / "g.edges"
    write_mtx_graph(g, *paths)
    return g, paths


class TestScan:
    def test_counts_match_graph(self, written):
        g, paths = written
        stats = scan_mtx_stats(*paths)
        assert stats.n_nodes == g.n_nodes
        assert stats.n_edges == g.n_edges // 2  # file lists undirected
        assert stats.n_beliefs == g.n_states

    def test_features_match_graph_extraction(self, written):
        """The streamed features equal the in-memory §3.7 features."""
        g, paths = written
        streamed = scan_mtx_stats(*paths).features()
        in_memory = extract_features(g)
        np.testing.assert_allclose(streamed, in_memory, rtol=1e-9)

    def test_degree_extremes(self, tmp_path):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        # star: node 0 out-degree 3 in canonical orientation
        g = BeliefGraph.from_undirected(
            np.full((4, 2), 0.5), np.array([[0, 1], [0, 2], [0, 3]]),
            attractive_potential(2, 0.8),
        )
        paths = tmp_path / "s.nodes", tmp_path / "s.edges"
        write_mtx_graph(g, *paths)
        stats = scan_mtx_stats(*paths)
        assert stats.max_out_degree == 3
        assert stats.max_in_degree == 1

    def test_malformed_edge_rejected(self, written, tmp_path):
        _, (nodes, edges) = written
        bad = tmp_path / "bad.edges"
        bad.write_text(edges.read_text().replace("\n2 ", "\nx ", 1))
        with pytest.raises(MtxFormatError):
            scan_mtx_stats(nodes, bad)

    def test_credo_select_file_without_materializing(self, written):
        g, paths = written
        credo = Credo()
        choice = credo.select_file(*paths)
        assert choice == credo.select(g)  # same answer, zero graph builds

"""Belief-store layouts (paper §3.4): AoS vs SoA behave identically."""

import numpy as np
import pytest

from repro.core.beliefs import (
    AoSBeliefStore,
    SoABeliefStore,
    make_store,
)

LAYOUTS = ["aos", "soa"]


@pytest.mark.parametrize("layout", LAYOUTS)
class TestStoreBasics:
    def test_set_get_roundtrip(self, layout):
        store = make_store(np.array([2, 2, 2]), layout)
        vec = np.array([0.3, 0.7], dtype=np.float32)
        store.set(1, vec)
        np.testing.assert_allclose(store.get(1), vec)

    def test_ragged_dims(self, layout):
        store = make_store(np.array([2, 3, 4]), layout)
        assert not store.uniform
        assert store.width == 4
        store.set(1, np.array([0.2, 0.3, 0.5]))
        assert len(store.get(1)) == 3
        assert len(store.get(2)) == 4

    def test_set_wrong_length_raises(self, layout):
        store = make_store(np.array([2, 2]), layout)
        with pytest.raises(ValueError):
            store.set(0, np.array([0.1, 0.2, 0.7]))

    def test_fill_uniform(self, layout):
        store = make_store(np.array([2, 4]), layout)
        store.fill_uniform()
        np.testing.assert_allclose(store.get(0), [0.5, 0.5])
        np.testing.assert_allclose(store.get(1), [0.25] * 4)

    def test_dense_roundtrip(self, layout):
        store = make_store(np.array([3, 3]), layout)
        matrix = np.array([[0.1, 0.2, 0.7], [0.5, 0.25, 0.25]], dtype=np.float32)
        store.load_dense(matrix)
        np.testing.assert_allclose(store.dense(), matrix)

    def test_copy_is_independent(self, layout):
        store = make_store(np.array([2, 2]), layout)
        store.set(0, np.array([0.9, 0.1]))
        clone = store.copy()
        clone.set(0, np.array([0.1, 0.9]))
        np.testing.assert_allclose(store.get(0), [0.9, 0.1])

    def test_iter_and_len(self, layout):
        store = make_store(np.array([2, 2, 2]), layout)
        store.fill_uniform()
        assert len(store) == 3
        assert sum(1 for _ in store) == 3

    def test_bytes_per_node_positive(self, layout):
        store = make_store(np.array([2, 2]), layout)
        assert store.bytes_per_node() > 0


class TestLayoutSpecifics:
    def test_factory_types(self):
        assert isinstance(make_store(np.array([2]), "aos"), AoSBeliefStore)
        assert isinstance(make_store(np.array([2]), "soa"), SoABeliefStore)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown belief layout"):
            make_store(np.array([2]), "interleaved")

    def test_rejects_zero_state_node(self):
        with pytest.raises(ValueError):
            make_store(np.array([2, 0]), "aos")

    def test_soa_dense_is_view_when_uniform(self):
        store = SoABeliefStore(np.array([2, 2]))
        assert store.dense_is_view()
        dense = store.dense()
        dense[0, 0] = 0.25
        assert store.get(0)[0] == np.float32(0.25)

    def test_aos_dense_is_copy(self):
        store = AoSBeliefStore(np.array([2, 2]))
        assert not store.dense_is_view()

    def test_aos_touches_fewer_lines_than_soa(self):
        """The §3.4 result: AoS needs ~56 % fewer cache accesses."""
        for width in (2, 3, 32):
            dims = np.full(10, width)
            aos = AoSBeliefStore(dims)
            soa = SoABeliefStore(dims)
            assert aos.cache_lines_per_access() < soa.cache_lines_per_access()

    def test_aos_soa_dense_agree(self):
        dims = np.array([3, 3, 3])
        data = np.random.default_rng(0).random((3, 3)).astype(np.float32)
        aos, soa = AoSBeliefStore(dims), SoABeliefStore(dims)
        aos.load_dense(data)
        soa.load_dense(data)
        np.testing.assert_allclose(aos.dense(), soa.dense())

"""The pluggable scheduling layer: parity, shim, units, integration.

The headline contract: all four schedules × both paradigms reach the
same fixed point.  Plus unit coverage of each Schedule class, the
deprecated ``work_queue`` shim, schedule-qualified registry names,
Credo schedule selection and the per-schedule gpusim cost hooks.
"""

import warnings

import numpy as np
import pytest

from repro.backends.registry import CORE_BACKENDS, get_backend, schedule_variants
from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.core.scheduler import (
    SCHEDULES,
    RelaxedPrioritySchedule,
    ResidualSchedule,
    SynchronousSchedule,
    WorkQueueSchedule,
    make_schedule,
    normalize_schedule,
)
from repro.core.sweepstats import SweepStats
from repro.credo.runner import Credo
from tests.conftest import make_loopy_graph, make_tree_graph

TIGHT = ConvergenceCriterion(threshold=1e-7, max_iterations=2000)


def _grid():
    return make_loopy_graph(seed=5, n_nodes=16, n_edges=24)


class TestSchedulerParity:
    """Same fixed point, any schedule, any paradigm (acceptance bound 1e-6)."""

    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_tree_fixed_point(self, paradigm, schedule):
        ref = LoopyBP(paradigm=paradigm, schedule="sync", criterion=TIGHT).run(
            make_tree_graph(seed=3)
        )
        run = LoopyBP(paradigm=paradigm, schedule=schedule, criterion=TIGHT).run(
            make_tree_graph(seed=3)
        )
        assert run.converged
        np.testing.assert_allclose(run.beliefs, ref.beliefs, atol=1e-6)

    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_grid_fixed_point(self, paradigm, schedule):
        ref = LoopyBP(paradigm=paradigm, schedule="sync", criterion=TIGHT).run(_grid())
        run = LoopyBP(paradigm=paradigm, schedule=schedule, criterion=TIGHT).run(_grid())
        assert run.converged
        np.testing.assert_allclose(run.beliefs, ref.beliefs, atol=1e-6)

    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    def test_already_converged_graph_terminates_identically(self, paradigm):
        """Satellite: on a graph whose first sweep already satisfies the
        criterion, sync and work_queue exit on the same iteration (the
        old duplicated loops each re-evaluated the break guard here)."""
        loose = ConvergenceCriterion(threshold=50.0, max_iterations=50)
        results = {
            s: LoopyBP(paradigm=paradigm, schedule=s, criterion=loose).run(
                make_tree_graph(seed=9)
            )
            for s in ("sync", "work_queue")
        }
        assert all(r.converged for r in results.values())
        assert results["sync"].iterations == results["work_queue"].iterations == 1


class TestDeprecationShim:
    def test_true_maps_to_work_queue(self):
        with pytest.warns(DeprecationWarning, match="work_queue"):
            cfg = LoopyConfig(work_queue=True)
        assert cfg.schedule == "work_queue"
        assert cfg.work_queue is None

    def test_false_maps_to_sync(self):
        with pytest.warns(DeprecationWarning, match="work_queue"):
            cfg = LoopyConfig(work_queue=False)
        assert cfg.schedule == "sync"

    def test_shim_selects_matching_schedule_class(self):
        from repro.core.loopy import _NodePlan
        from repro.core.state import LoopyState

        for flag, expected in ((True, WorkQueueSchedule), (False, SynchronousSchedule)):
            with pytest.warns(DeprecationWarning):
                cfg = LoopyConfig(work_queue=flag)
            state = LoopyState(make_tree_graph(seed=1))
            plan = _NodePlan(state, cfg)
            sched = make_schedule(cfg.schedule, plan.n_elements, plan.element_threshold)
            assert isinstance(sched, expected)

    def test_schedule_api_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            LoopyConfig(schedule="residual")
            LoopyBP(schedule="relaxed")


class TestScheduleUnits:
    def test_normalize_aliases(self):
        assert normalize_schedule("fifo") == "work_queue"
        assert normalize_schedule("splash") == "residual"
        assert normalize_schedule("multiqueue") == "relaxed"
        with pytest.raises(ValueError, match="unknown schedule"):
            normalize_schedule("lifo")

    def test_sync_is_exhaustive_and_full(self):
        s = SynchronousSchedule(5, 1e-3)
        assert s.exhaustive and not s.wants_downstream
        np.testing.assert_array_equal(s.active, np.arange(5))
        assert not s.drained

    def test_work_queue_drains(self):
        s = WorkQueueSchedule(4, 1e-3)
        assert len(s.active) == 4
        s.update(s.active, np.zeros(4))
        assert s.drained

    def test_residual_prefers_large_residuals(self):
        s = ResidualSchedule(10, 1e-3, batch_fraction=0.3)
        # 9 eligible elements → batch of ceil(0.3·9)=3, the top residuals
        s.update(
            np.arange(10),
            np.array([0.0, 9, 0.5, 8, 0.5, 7, 0.5, 0.5, 0.5, 0.5]),
        )
        np.testing.assert_array_equal(s.active, [1, 3, 5])

    def test_residual_downstream_boost(self):
        s = ResidualSchedule(4, 1e-3)
        s.update(np.arange(4), np.zeros(4))
        assert s.drained
        s.update(
            np.empty(0, np.int64), np.empty(0),
            downstream=np.array([2]), downstream_priority=np.array([0.5]),
        )
        assert not s.drained and s.priority[2] == 0.5

    def test_relaxed_is_deterministic_and_eligible_only(self):
        a = RelaxedPrioritySchedule(50, 1e-3, seed=7)
        b = RelaxedPrioritySchedule(50, 1e-3, seed=7)
        deltas = np.linspace(0, 1, 50)
        a.update(np.arange(50), deltas)
        b.update(np.arange(50), deltas)
        np.testing.assert_array_equal(a.active, b.active)
        assert np.all(a.priority[a.active] >= a.element_threshold)

    def test_charges_differ_by_schedule(self):
        """FIFO pays O(1)/push, residual O(log n)/push, relaxed O(1)."""
        charged = {}
        for name in ("work_queue", "residual", "relaxed"):
            s = make_schedule(name, 1024, 1e-3)
            s.update(np.arange(1024), np.full(1024, 1.0))
            stats = SweepStats()
            s.charge(stats)
            charged[name] = stats.atomic_ops
        assert charged["residual"] == 10 * charged["relaxed"]
        assert charged["work_queue"] <= charged["relaxed"] + 1024


class TestBackendIntegration:
    @pytest.mark.parametrize("name", CORE_BACKENDS)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_every_core_backend_runs_every_schedule(self, name, schedule):
        result = get_backend(name).run(_grid(), schedule=schedule)
        assert result.converged
        assert result.detail["schedule"] == schedule
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-3)

    def test_schedule_qualified_registry_names(self):
        backend = get_backend("c-node:residual")
        assert backend.default_schedule == "residual"
        result = backend.run(_grid())
        assert result.detail["schedule"] == "residual"

    def test_schedule_variants_product(self):
        variants = schedule_variants()
        assert len(variants) == len(CORE_BACKENDS) * len(SCHEDULES)
        assert "cuda-edge:relaxed" in variants
        for name in variants:
            get_backend(name)  # all constructible

    def test_openacc_coerces_to_sync(self):
        result = get_backend("openacc").run(_grid(), schedule="residual")
        assert result.detail["schedule"] == "sync"

    def test_gpusim_modeled_time_differs_across_schedules(self):
        """The cost hooks fire: per-schedule queue/atomic pricing shows
        up in modeled_time on a non-trivial graph."""
        g = make_loopy_graph(seed=11, n_nodes=400, n_edges=1200, coupling=0.85)
        crit = ConvergenceCriterion(threshold=1e-5, max_iterations=300)
        times = {
            s: get_backend("cuda-edge").run(g.copy(), schedule=s, criterion=crit).modeled_time
            for s in SCHEDULES
        }
        assert len({round(t, 9) for t in times.values()}) == len(SCHEDULES)

    def test_gpusim_breakdown_has_queue_component(self):
        result = get_backend("cuda-node").run(_grid(), schedule="work_queue")
        assert result.detail["breakdown"].queue > 0.0
        sync = get_backend("cuda-node").run(_grid(), schedule="sync")
        assert sync.detail["breakdown"].queue == 0.0


class TestCredoSchedules:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_run_with_pinned_schedule(self, schedule):
        result = Credo(schedule=schedule).run(_grid())
        assert result.converged
        assert result.detail["schedule"] == schedule

    def test_qualified_backend_name(self):
        result = Credo().run(_grid(), backend="c-edge:relaxed")
        assert result.backend == "c-edge"
        assert result.detail["selected"] == "c-edge"
        assert result.detail["schedule"] == "relaxed"

    def test_selector_picks_a_valid_schedule(self):
        credo = Credo()
        g = _grid()
        chosen = credo.select_schedule(g)
        assert chosen in SCHEDULES
        result = credo.run(g)
        assert result.detail["schedule"] in SCHEDULES

    def test_heavy_tail_graph_gets_priority_schedule(self):
        """A star graph concentrates residual mass on the hub."""
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        rng = np.random.default_rng(0)
        n = 60
        edges = np.array([[0, v] for v in range(1, n)])
        priors = rng.dirichlet(np.ones(2), size=n)
        star = BeliefGraph.from_undirected(
            priors, edges, attractive_potential(2, 0.7)
        )
        selector = Credo().selector
        assert selector.select_schedule(star, "c-edge") == "residual"
        assert selector.select_schedule(star, "cuda-edge") == "relaxed"
        grid = _grid()
        assert selector.select_schedule(grid, "c-edge") == "work_queue"

    def test_legacy_work_queue_flag_still_flows(self):
        with pytest.warns(DeprecationWarning, match="work_queue"):
            result = Credo(work_queue=False).run(_grid())
        assert result.detail["schedule"] == "sync"

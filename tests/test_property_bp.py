"""Property-based tests on the BP core (hypothesis).

Invariants exercised:
* tree BP and loopy BP agree with exact enumeration on random trees;
* beliefs stay normalized under any update schedule;
* the work queue never changes the fixed point;
* both paradigms converge to the same posteriors;
* evidence clamps survive any run.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LoopyBP, TreeBP, exact_marginals, observe
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.potentials import random_potential

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tree_graphs(draw):
    """Random tree MRFs with 2-4 states and strictly positive factors."""
    n_nodes = draw(st.integers(min_value=2, max_value=9))
    n_states = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = np.array([[int(rng.integers(0, v)), v] for v in range(1, n_nodes)])
    priors = rng.dirichlet(np.full(n_states, 2.0), size=n_nodes)
    # Dirichlet can emit exact zeros in float32; keep factors positive
    priors = np.maximum(priors, 1e-4)
    pot = np.maximum(random_potential(n_states, rng), 1e-4)
    return BeliefGraph.from_undirected(priors, edges, pot)


@st.composite
def loopy_graphs(draw):
    n_nodes = draw(st.integers(min_value=3, max_value=15))
    extra = draw(st.integers(min_value=0, max_value=10))
    n_states = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    tree = [[int(rng.integers(0, v)), v] for v in range(1, n_nodes)]
    loops = rng.integers(0, n_nodes, size=(extra, 2)).tolist()
    edges = np.array(tree + loops)
    priors = np.maximum(rng.dirichlet(np.full(n_states, 2.0), size=n_nodes), 1e-4)
    pot = np.maximum(random_potential(n_states, rng), 1e-2)
    return BeliefGraph.from_undirected(priors, edges, pot)


class TestTreeExactness:
    @given(tree_graphs())
    @settings(**SETTINGS)
    def test_tree_bp_matches_enumeration(self, graph):
        expected = exact_marginals(graph)
        result = TreeBP().run(graph)
        np.testing.assert_allclose(result.beliefs, expected, atol=5e-4)

    @given(tree_graphs(), st.sampled_from(["node", "edge"]))
    @settings(**SETTINGS)
    def test_loopy_bp_matches_enumeration_on_trees(self, graph, paradigm):
        expected = exact_marginals(graph)
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=300)
        result = LoopyBP(paradigm=paradigm, criterion=crit).run(graph)
        np.testing.assert_allclose(result.beliefs, expected, atol=5e-3)

    @given(tree_graphs())
    @settings(**SETTINGS)
    def test_evidence_consistency(self, graph):
        node = graph.n_nodes // 2
        state = int(graph.dims[node]) - 1
        observe(graph, node, state)
        expected = exact_marginals(graph)
        result = LoopyBP(criterion=ConvergenceCriterion(1e-6, 300)).run(graph)
        np.testing.assert_allclose(result.beliefs, expected, atol=5e-3)
        assert result.beliefs[node, state] == pytest.approx(1.0, abs=1e-5)


class TestInvariants:
    @given(loopy_graphs(), st.sampled_from(["node", "edge"]),
           st.sampled_from(["sum_product", "broadcast"]))
    @settings(**SETTINGS)
    def test_beliefs_always_normalized(self, graph, paradigm, rule):
        result = LoopyBP(
            paradigm=paradigm,
            update_rule=rule,
            criterion=ConvergenceCriterion(max_iterations=20),
        ).run(graph)
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)
        assert (result.beliefs >= 0).all()
        assert np.isfinite(result.beliefs).all()

    @given(loopy_graphs())
    @settings(**SETTINGS)
    def test_work_queue_preserves_fixed_point(self, graph):
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=400)
        with_q = LoopyBP(work_queue=True, criterion=crit).run(graph.copy())
        without_q = LoopyBP(work_queue=False, criterion=crit).run(graph.copy())
        if with_q.converged and without_q.converged:
            np.testing.assert_allclose(with_q.beliefs, without_q.beliefs, atol=5e-3)

    @given(loopy_graphs())
    @settings(**SETTINGS)
    def test_paradigms_agree_at_convergence(self, graph):
        crit = ConvergenceCriterion(threshold=1e-7, max_iterations=500)
        node = LoopyBP(paradigm="node", criterion=crit).run(graph.copy())
        edge = LoopyBP(paradigm="edge", criterion=crit).run(graph.copy())
        if node.converged and edge.converged:
            np.testing.assert_allclose(node.beliefs, edge.beliefs, atol=5e-3)

    @given(loopy_graphs(), st.floats(min_value=0.0, max_value=0.8))
    @settings(**SETTINGS)
    def test_damping_preserves_fixed_point(self, graph, damping):
        crit = ConvergenceCriterion(threshold=1e-7, max_iterations=600)
        plain = LoopyBP(criterion=crit).run(graph.copy())
        damped = LoopyBP(damping=damping, criterion=crit).run(graph.copy())
        if plain.converged and damped.converged:
            np.testing.assert_allclose(plain.beliefs, damped.beliefs, atol=5e-3)


class TestStoreLayoutEquivalence:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**SETTINGS)
    def test_aos_and_soa_identical_results(self, seed):
        from tests.conftest import make_loopy_graph

        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=300)
        g_aos = make_loopy_graph(seed=seed, layout="aos")
        g_soa = make_loopy_graph(seed=seed, layout="soa")
        r_aos = LoopyBP(criterion=crit).run(g_aos)
        r_soa = LoopyBP(criterion=crit).run(g_soa)
        np.testing.assert_allclose(r_aos.beliefs, r_soa.beliefs, atol=1e-5)

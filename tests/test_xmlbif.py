"""XML-BIF parsing and writing (paper §3.2)."""

import numpy as np
import pytest

from repro.io.bif import parse_bif
from repro.io.xmlbif import XmlBifError, parse_xmlbif, write_xmlbif

MINIMAL = """<?xml version="1.0"?>
<BIF VERSION="0.3">
<NETWORK>
<NAME>mini</NAME>
<VARIABLE TYPE="nature">
  <NAME>rain</NAME>
  <OUTCOME>yes</OUTCOME>
  <OUTCOME>no</OUTCOME>
</VARIABLE>
<VARIABLE TYPE="nature">
  <NAME>wet</NAME>
  <OUTCOME>yes</OUTCOME>
  <OUTCOME>no</OUTCOME>
</VARIABLE>
<DEFINITION>
  <FOR>rain</FOR>
  <TABLE>0.2 0.8</TABLE>
</DEFINITION>
<DEFINITION>
  <FOR>wet</FOR>
  <GIVEN>rain</GIVEN>
  <TABLE>0.9 0.1 0.05 0.95</TABLE>
</DEFINITION>
</NETWORK>
</BIF>
"""


class TestParse:
    def test_minimal(self):
        net = parse_xmlbif(MINIMAL)
        assert net.name == "mini"
        assert net.variables["rain"].states == ["yes", "no"]
        np.testing.assert_allclose(net.cpts["wet"].table, [[0.9, 0.1], [0.05, 0.95]])

    def test_network_root_accepted(self):
        inner = MINIMAL.split("<BIF VERSION=\"0.3\">")[1].rsplit("</BIF>")[0]
        net = parse_xmlbif(inner.strip())
        assert net.name == "mini"

    def test_malformed_xml(self):
        with pytest.raises(XmlBifError, match="malformed XML"):
            parse_xmlbif("<BIF><NETWORK>")

    def test_wrong_root(self):
        with pytest.raises(XmlBifError, match="expected"):
            parse_xmlbif("<HTML></HTML>")

    def test_table_size_mismatch(self):
        bad = MINIMAL.replace("0.9 0.1 0.05 0.95", "0.9 0.1")
        with pytest.raises(XmlBifError, match="holds 2 entries"):
            parse_xmlbif(bad)

    def test_non_numeric_table(self):
        bad = MINIMAL.replace("0.2 0.8", "zero point two 0.8")
        with pytest.raises(XmlBifError, match="non-numeric"):
            parse_xmlbif(bad)

    def test_undeclared_for(self):
        bad = MINIMAL.replace("<FOR>rain</FOR>", "<FOR>ghost</FOR>", 1)
        with pytest.raises(XmlBifError, match="undeclared"):
            parse_xmlbif(bad)

    def test_missing_outcomes(self):
        bad = MINIMAL.replace("<OUTCOME>yes</OUTCOME>\n  <OUTCOME>no</OUTCOME>", "", 1)
        with pytest.raises(XmlBifError, match="OUTCOME"):
            parse_xmlbif(bad)


class TestWriter:
    def test_roundtrip(self):
        net = parse_xmlbif(MINIMAL)
        net2 = parse_xmlbif(write_xmlbif(net))
        for name, cpt in net.cpts.items():
            np.testing.assert_allclose(cpt.table, net2.cpts[name].table, atol=1e-5)

    def test_cross_format_equivalence(self, family_out_bif):
        """BIF -> XML-BIF -> parse gives the same network."""
        net = parse_bif(family_out_bif)
        net2 = parse_xmlbif(write_xmlbif(net))
        assert list(net.variables) == list(net2.variables)
        for name, cpt in net.cpts.items():
            np.testing.assert_allclose(cpt.table, net2.cpts[name].table, atol=1e-5)

    def test_file_output(self, tmp_path):
        from repro.io.xmlbif import parse_xmlbif_file

        net = parse_xmlbif(MINIMAL)
        path = tmp_path / "net.xml"
        write_xmlbif(net, path)
        net2 = parse_xmlbif_file(path)
        assert net2.name == "mini"

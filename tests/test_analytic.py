"""The paper-scale analytic estimator (repro.credo.analytic)."""

import numpy as np
import pytest

from repro.core.loopy import LoopyBP
from repro.credo.analytic import (
    IterationModel,
    estimate_backend_times,
    full_sweep_stats,
    probe_iteration_model,
)
from repro.graphs.suite import SUITE, build_graph
from tests.conftest import make_loopy_graph


class TestSweepFormulas:
    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    def test_match_kernel_accounting(self, paradigm):
        """The analytic per-sweep counts must equal what the executing
        kernels report for a full sweep."""
        g = make_loopy_graph(seed=81, n_nodes=40, n_edges=80)
        result = LoopyBP(paradigm=paradigm, work_queue=False).run(g)
        first = result.run_stats.per_iteration[0]
        predicted = full_sweep_stats(g.n_nodes, g.n_edges, g.n_states, paradigm)
        assert first.edges_processed == predicted.edges_processed
        assert first.flops == predicted.flops
        assert first.random_accesses == predicted.random_accesses
        assert first.atomic_ops == predicted.atomic_ops

    def test_unknown_paradigm(self):
        with pytest.raises(ValueError):
            full_sweep_stats(10, 20, 2, "warp")


class TestProbe:
    def test_probe_reflects_convergence(self):
        g = make_loopy_graph(seed=82, n_nodes=100, n_edges=200)
        model = probe_iteration_model(g)
        assert model.node_iterations >= model.edge_iterations
        assert model.node_queue_activity <= model.node_iterations
        assert model.edge_queue_activity <= model.edge_iterations


class TestEstimates:
    def test_small_graphs_favour_c_edge(self):
        times = estimate_backend_times(SUITE["10x40"], 2)
        assert min(times, key=times.__getitem__) == "c-edge"

    def test_large_graphs_favour_cuda_node(self):
        times = estimate_backend_times(SUITE["2Mx8M"], 2)
        assert min(times, key=times.__getitem__) == "cuda-node"

    def test_vram_exclusions_match_paper(self):
        """§4.2: TW and OR exceed the GTX 1070 VRAM at 32 beliefs; the
        mid-size graphs do not."""
        assert "cuda-node" not in estimate_backend_times(SUITE["TW"], 32)
        assert "cuda-node" not in estimate_backend_times(SUITE["OR"], 32)
        assert "cuda-node" in estimate_backend_times(SUITE["LJ"], 3)
        assert "cuda-node" in estimate_backend_times(SUITE["K21"], 3)

    def test_volta_faster_than_pascal(self):
        pascal = estimate_backend_times(SUITE["2Mx8M"], 3, "gtx1070")
        volta = estimate_backend_times(SUITE["2Mx8M"], 3, "v100")
        assert volta["cuda-node"] < pascal["cuda-node"]
        assert volta["cuda-edge"] < pascal["cuda-edge"]

    def test_volta_improves_edge_more_than_node(self):
        """§4.4's mechanism: cheaper atomics lift the Edge kernels most."""
        pascal = estimate_backend_times(SUITE["PO"], 3, "gtx1070")
        volta = estimate_backend_times(SUITE["PO"], 3, "v100")
        edge_gain = pascal["cuda-edge"] / volta["cuda-edge"]
        node_gain = pascal["cuda-node"] / volta["cuda-node"]
        assert edge_gain > node_gain

    def test_headline_node_speedup_band(self):
        """§4.1.1: 'nearly 121x' CUDA Node vs C Node on 2Mx8M at 3
        beliefs — the estimate must land in the tens-to-low-hundreds."""
        times = estimate_backend_times(SUITE["2Mx8M"], 3)
        speedup = times["c-node"] / times["cuda-node"]
        assert 10 < speedup < 300

    def test_work_queue_flag(self):
        with_q = estimate_backend_times(SUITE["1Mx4M"], 2, work_queue=True)
        without_q = estimate_backend_times(SUITE["1Mx4M"], 2, work_queue=False)
        assert with_q["c-node"] < without_q["c-node"]

    def test_custom_iteration_model(self):
        slow = IterationModel(node_iterations=100, edge_iterations=50,
                              node_queue_activity=40, edge_queue_activity=25)
        fast = IterationModel(node_iterations=5, edge_iterations=3,
                              node_queue_activity=2, edge_queue_activity=2)
        t_slow = estimate_backend_times(SUITE["100kx400k"], 2, model=slow)
        t_fast = estimate_backend_times(SUITE["100kx400k"], 2, model=fast)
        assert t_slow["c-node"] > t_fast["c-node"]


class TestManagementFraction:
    def test_paper_decomposition_at_table1_sizes(self):
        """§4.1.1: 'the GPU memory management overhead alone accounts for
        99.8% of the CUDA execution time which reduces to an average of
        71% for the graphs at or above 100,000 nodes'."""
        from repro.credo.analytic import estimate_cuda_breakdown

        _, smallest = estimate_cuda_breakdown(SUITE["10x40"], 2)
        assert smallest > 0.99

        big = ["100kx400k", "600kx1200k", "1Mx4M", "2Mx8M", "PO", "YO"]
        fracs = [estimate_cuda_breakdown(SUITE[ab], 2)[1] for ab in big]
        avg = sum(fracs) / len(fracs)
        assert 0.55 < avg < 0.99
        # and the fraction shrinks as graphs grow
        assert fracs[0] > fracs[-1] or fracs[0] > min(fracs)

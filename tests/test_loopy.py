"""The loopy BP driver (paper Algorithm 1, §3.3, §3.5)."""

import numpy as np
import pytest

from repro.core import LoopyBP, LoopyConfig, exact_marginals
from repro.core.convergence import ConvergenceCriterion
from tests.conftest import make_loopy_graph, make_tree_graph


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"paradigm": "vertex"},
            {"update_rule": "gossip"},
            {"semiring": "min"},
            {"damping": 1.0},
            {"damping": -0.1},
            {"edge_chunks": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LoopyConfig(**kwargs)

    def test_overrides(self):
        bp = LoopyBP(paradigm="edge", damping=0.3)
        assert bp.config.paradigm == "edge"
        assert bp.config.damping == 0.3


class TestCorrectness:
    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    @pytest.mark.parametrize("work_queue", [True, False])
    def test_exact_on_trees(self, paradigm, work_queue):
        g = make_tree_graph(seed=11, n_nodes=9)
        expected = exact_marginals(g)
        result = LoopyBP(paradigm=paradigm, work_queue=work_queue).run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs, expected, atol=2e-3)

    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    def test_three_state_tree(self, paradigm):
        g = make_tree_graph(seed=13, n_states=3, n_nodes=8)
        expected = exact_marginals(g)
        result = LoopyBP(paradigm=paradigm).run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=2e-3)

    def test_paradigms_reach_same_fixed_point(self):
        g = make_loopy_graph(seed=14, n_nodes=20, n_edges=35)
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=500)
        r_node = LoopyBP(paradigm="node", criterion=crit).run(g.copy())
        r_edge = LoopyBP(paradigm="edge", criterion=crit).run(g.copy())
        np.testing.assert_allclose(r_node.beliefs, r_edge.beliefs, atol=1e-3)

    def test_work_queue_matches_full_sweeps(self):
        g = make_loopy_graph(seed=15, n_nodes=30, n_edges=60)
        crit = ConvergenceCriterion(threshold=1e-5, max_iterations=500)
        with_q = LoopyBP(work_queue=True, criterion=crit).run(g.copy())
        without_q = LoopyBP(work_queue=False, criterion=crit).run(g.copy())
        np.testing.assert_allclose(with_q.beliefs, without_q.beliefs, atol=1e-3)

    def test_updates_graph_in_place(self):
        g = make_loopy_graph(seed=16)
        result = LoopyBP().run(g)
        np.testing.assert_allclose(g.beliefs.dense(), result.beliefs, atol=1e-6)

    def test_broadcast_rule_converges(self):
        g = make_loopy_graph(seed=17)
        result = LoopyBP(update_rule="broadcast").run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-5)

    def test_max_product_finds_map_on_tree(self):
        g = make_tree_graph(seed=18, n_nodes=6)
        result = LoopyBP(semiring="max").run(g)
        # max-marginals argmax == joint argmax on trees
        import itertools

        from repro.core.exact import _enumerate

        best, best_w = None, -1.0
        for assignment, weight in _enumerate(g):
            if weight > best_w:
                best, best_w = assignment, weight
        np.testing.assert_array_equal(result.map_states(), np.array(best))


class TestTermination:
    def test_iteration_cap_respected(self):
        g = make_loopy_graph(seed=19, coupling=0.95)
        crit = ConvergenceCriterion(threshold=1e-12, max_iterations=5)
        result = LoopyBP(criterion=crit).run(g)
        assert result.iterations == 5
        assert not result.converged

    def test_delta_history_length_matches_iterations(self):
        g = make_loopy_graph(seed=20)
        result = LoopyBP().run(g)
        assert len(result.delta_history) == result.iterations
        assert result.final_delta == result.delta_history[-1]

    def test_deltas_eventually_decrease(self):
        g = make_loopy_graph(seed=21)
        result = LoopyBP(work_queue=False).run(g)
        assert result.delta_history[-1] < result.delta_history[0]

    def test_edgeless_graph_converges_immediately(self):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        g = BeliefGraph.from_undirected(
            np.array([[0.2, 0.8], [0.6, 0.4]]),
            np.empty((0, 2), dtype=np.int64),
            attractive_potential(2, 0.8),
        )
        result = LoopyBP().run(g)
        assert result.converged and result.iterations <= 2
        np.testing.assert_allclose(result.beliefs, [[0.2, 0.8], [0.6, 0.4]], atol=1e-5)


class TestStats:
    def test_work_queue_reduces_processed_elements(self):
        g = make_loopy_graph(seed=22, n_nodes=50, n_edges=100)
        with_q = LoopyBP(paradigm="node", work_queue=True).run(g.copy())
        without_q = LoopyBP(paradigm="node", work_queue=False).run(g.copy())
        assert (
            with_q.run_stats.total.nodes_processed
            < without_q.run_stats.total.nodes_processed
        )

    def test_edge_paradigm_reports_atomics(self):
        g = make_loopy_graph(seed=23)
        result = LoopyBP(paradigm="edge", work_queue=False).run(g)
        assert result.run_stats.total.atomic_ops > 0

    def test_per_iteration_stats_recorded(self):
        g = make_loopy_graph(seed=24)
        result = LoopyBP().run(g)
        assert result.run_stats.iterations == result.iterations

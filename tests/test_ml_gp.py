"""Gaussian-process classifier (the paper's Figure 10 comparison)."""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessClassifier


def blobs(n=60, seed=0, gap=3.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n, 2))
    X1 = rng.normal(gap, 1.0, size=(n, 2))
    return np.vstack([X0, X1]), np.array([0] * n + [1] * n)


class TestGaussianProcess:
    def test_separable_blobs(self):
        X, y = blobs()
        gp = GaussianProcessClassifier(length_scale=1.5).fit(X, y)
        assert gp.score(X, y) > 0.93

    def test_probabilities_normalized_and_calibrated_direction(self):
        X, y = blobs(40, gap=4.0)
        gp = GaussianProcessClassifier(length_scale=1.5).fit(X, y)
        proba = gp.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        # deep inside class 1's blob the posterior leans to class 1
        q = np.array([[4.0, 4.0]])
        assert gp.predict_proba(q)[0, 1] > 0.7

    def test_nonlinear_boundary(self):
        """GPs (unlike the linear SVM) handle a circular boundary."""
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(200, 2))
        y = (np.linalg.norm(X, axis=1) < 1.0).astype(int)
        gp = GaussianProcessClassifier(length_scale=0.7).fit(X, y)
        assert gp.score(X, y) > 0.9

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(2)
        means = [(0, 0), (4, 0), (0, 4)]
        X = np.vstack([rng.normal(mu, 0.5, size=(25, 2)) for mu in means])
        y = np.repeat(["a", "b", "c"], 25)
        gp = GaussianProcessClassifier(length_scale=1.0).fit(X, y)
        assert gp.score(X, y) > 0.95
        assert gp.predict_proba(X).shape == (75, 3)

    def test_string_labels(self):
        X, y = blobs(20)
        labels = np.where(y == 0, "edge", "node")
        gp = GaussianProcessClassifier().fit(X, labels)
        assert set(gp.predict(X)) <= {"edge", "node"}

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessClassifier(length_scale=0.0)
        with pytest.raises(ValueError):
            GaussianProcessClassifier(noise=-1.0)

"""Junction-tree exact inference (extension; §5.1 related work)."""

import numpy as np
import pytest

from repro.core import LoopyBP, exact_marginals, observe
from repro.core.junction import (
    JunctionTree,
    junction_tree_marginals,
    treewidth_upper_bound,
)
from repro.graphs.grids import grid_graph
from tests.conftest import make_loopy_graph, make_tree_graph


class TestTreewidth:
    def test_tree_has_width_one(self):
        assert treewidth_upper_bound(make_tree_graph(seed=1, n_nodes=10)) == 1

    def test_grid_width_bounded_by_side(self):
        g = grid_graph(3, 6, seed=0)
        assert 2 <= treewidth_upper_bound(g) <= 4

    def test_edgeless_width_zero(self):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        g = BeliefGraph.from_undirected(
            np.full((3, 2), 0.5), np.empty((0, 2), dtype=np.int64),
            attractive_potential(2, 0.8),
        )
        assert treewidth_upper_bound(g) == 0


class TestExactness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_enumeration_on_trees(self, seed):
        g = make_tree_graph(seed=seed, n_nodes=9)
        np.testing.assert_allclose(
            junction_tree_marginals(g), exact_marginals(g), atol=1e-10
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_enumeration_on_loopy_graphs(self, seed):
        g = make_loopy_graph(seed=seed, n_nodes=12, n_edges=18)
        np.testing.assert_allclose(
            junction_tree_marginals(g), exact_marginals(g), atol=1e-10
        )

    def test_three_state_graph(self):
        g = make_loopy_graph(seed=5, n_nodes=10, n_edges=14, n_states=3)
        np.testing.assert_allclose(
            junction_tree_marginals(g), exact_marginals(g), atol=1e-10
        )

    def test_with_evidence(self):
        g = make_loopy_graph(seed=6, n_nodes=10, n_edges=14)
        observe(g, 3, 1)
        np.testing.assert_allclose(
            junction_tree_marginals(g), exact_marginals(g), atol=1e-10
        )

    def test_beyond_enumeration_scale(self):
        """The point of the junction tree: exact marginals on a 60-node
        grid (2^60 configurations — far past brute force) that loopy BP
        approximates well."""
        g = grid_graph(3, 20, seed=1, coupling=0.7)
        exact = junction_tree_marginals(g)
        loopy = LoopyBP().run(g.copy())
        assert np.abs(loopy.beliefs - exact).max() < 0.08
        np.testing.assert_allclose(exact.sum(axis=1), 1.0, atol=1e-9)


class TestStructure:
    def test_width_guard(self):
        rng = np.random.default_rng(0)
        # a dense graph blows the width cap
        edges = np.array([(i, j) for i in range(16) for j in range(i + 1, 16)])
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        g = BeliefGraph.from_undirected(
            rng.dirichlet([1, 1], size=16), edges, attractive_potential(2, 0.8)
        )
        with pytest.raises(ValueError, match="intractable"):
            JunctionTree(g, max_width=8)

    def test_running_intersection_property(self):
        g = make_loopy_graph(seed=7, n_nodes=14, n_edges=22)
        jt = JunctionTree(g)
        # every variable's cliques form a connected subtree
        for v in range(g.n_nodes):
            members = [i for i, c in enumerate(jt.cliques) if v in c.variables]
            if len(members) <= 1:
                continue
            # BFS within the member-induced subgraph of the clique tree
            seen = {members[0]}
            frontier = [members[0]]
            while frontier:
                c = frontier.pop()
                for nb in jt.cliques[c].neighbours:
                    if nb in members and nb not in seen:
                        seen.add(nb)
                        frontier.append(nb)
            assert seen == set(members), f"variable {v} violates RIP"

    def test_disconnected_components(self):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        rng = np.random.default_rng(1)
        g = BeliefGraph.from_undirected(
            rng.dirichlet([1, 1], size=6),
            np.array([[0, 1], [1, 2], [3, 4], [4, 5]]),
            attractive_potential(2, 0.8),
        )
        np.testing.assert_allclose(
            junction_tree_marginals(g), exact_marginals(g), atol=1e-10
        )

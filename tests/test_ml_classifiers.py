"""The remaining classifiers the paper compares (§4.3)."""

import numpy as np
import pytest

from repro.ml import (
    GaussianNBClassifier,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearSVMClassifier,
    MLPClassifier,
)


def blobs(n=150, seed=0, gap=3.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n, 2))
    X1 = rng.normal(gap, 1.0, size=(n, 2))
    return np.vstack([X0, X1]), np.array([0] * n + [1] * n)


ALL = [
    KNeighborsClassifier(5),
    GaussianNBClassifier(),
    LinearSVMClassifier(max_iter=120),
    MLPClassifier(max_iter=250),
    GradientBoostingClassifier(n_estimators=25),
]


@pytest.mark.parametrize("clf", ALL, ids=lambda c: type(c).__name__)
class TestCommonBehaviour:
    def test_separable_blobs(self, clf):
        X, y = blobs()
        clf.fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_predict_proba_normalized(self, clf):
        X, y = blobs(60)
        proba = clf.fit(X, y).predict_proba(X)
        assert proba.shape == (len(X), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_string_labels(self, clf):
        X, y = blobs(40)
        labels = np.where(y == 0, "edge", "node")
        clf.fit(X, labels)
        assert set(clf.predict(X)) <= {"edge", "node"}

    def test_shape_mismatch_raises(self, clf):
        with pytest.raises(ValueError):
            clf.fit(np.zeros((4, 2)), np.zeros(5))


class TestKNN:
    def test_k1_memorizes(self):
        X, y = blobs(30)
        knn = KNeighborsClassifier(1).fit(X, y)
        np.testing.assert_array_equal(knn.predict(X), y)

    def test_distance_weighting(self):
        X = np.array([[0.0], [1.0], [1.1], [1.2]])
        y = np.array([0, 1, 1, 1])
        uniform = KNeighborsClassifier(4, weights="uniform").fit(X, y)
        weighted = KNeighborsClassifier(4, weights="distance").fit(X, y)
        q = np.array([[0.05]])
        # uniform majority says 1; distance weighting favours the close 0
        assert weighted.predict_proba(q)[0, 0] > uniform.predict_proba(q)[0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(3, weights="cosine")


class TestGaussianNB:
    def test_means_learned(self):
        X, y = blobs(200, gap=5.0)
        nb = GaussianNBClassifier().fit(X, y)
        np.testing.assert_allclose(nb.theta_[0], [0, 0], atol=0.4)
        np.testing.assert_allclose(nb.theta_[1], [5, 5], atol=0.4)

    def test_priors_reflect_imbalance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 1))
        y = np.array([0] * 90 + [1] * 10)
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.class_prior_[0] == pytest.approx(0.9)

    def test_interaction_structure_defeats_nb(self):
        """§4.3: NB's independence assumption fails on interacting
        features (XOR has identical per-class marginals)."""
        rng = np.random.default_rng(1)
        X = rng.random((400, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.score(X, y) < 0.7


class TestLinearSVM:
    def test_margin_sign(self):
        X, y = blobs(100, gap=4.0)
        svm = LinearSVMClassifier(max_iter=150).fit(X, y)
        scores = svm.decision_function(X)[:, 0]
        assert (scores[y == 1] > 0).mean() > 0.95

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(2)
        means = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)]  # OvR-separable triangle
        X = np.vstack([rng.normal(mu, 0.5, size=(40, 2)) for mu in means])
        y = np.repeat([0, 1, 2], 40)
        svm = LinearSVMClassifier(max_iter=150).fit(X, y)
        assert svm.coef_.shape == (3, 2)
        assert svm.score(X, y) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSVMClassifier(C=0.0)


class TestMLPAndBoosting:
    def test_mlp_learns_xor(self):
        rng = np.random.default_rng(3)
        X = rng.random((300, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        mlp = MLPClassifier(
            hidden_units=32, max_iter=1000, learning_rate=0.02, random_state=0
        ).fit(X, y)
        assert mlp.score(X, y) > 0.9

    def test_boosting_improves_with_stages(self):
        rng = np.random.default_rng(4)
        X = rng.random((300, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        weak = GradientBoostingClassifier(n_estimators=1).fit(X, y)
        strong = GradientBoostingClassifier(n_estimators=40).fit(X, y)
        assert strong.score(X, y) > weak.score(X, y)

    def test_boosting_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_units=0)

"""Whole-program dataflow rules (RPR4xx), SARIF export, baseline updates.

The RPR4xx fixtures under ``tests/fixtures/lint/dataflow_*.py`` follow
the same convention as the rest of the lint fixtures: ``# FINDING``
marks every line the rule must flag, and each file carries clean twins
the rule must stay silent on.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.framework import (
    Analyzer,
    all_rules,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.sarif import SARIF_VERSION, render_sarif, validate_sarif
from tests.test_analysis import (
    FIXTURES,
    REPO,
    SRC,
    assert_matches_markers,
    run_rule,
)


class TestDataflowRules:
    def test_shape_axis_mismatch(self):
        assert_matches_markers("RPR401", "dataflow_shape.py")

    def test_dtype_drift(self):
        assert_matches_markers("RPR402", "dataflow_dtype.py")

    def test_write_after_read(self):
        assert_matches_markers("RPR403", "dataflow_alias.py")

    def test_scratch_escape(self):
        assert_matches_markers("RPR404", "dataflow_scratch.py")

    def test_rules_registered_with_catalog(self):
        ids = {r.id for r in all_rules()}
        assert {"RPR401", "RPR402", "RPR403", "RPR404"} <= ids

    def test_clean_tree_has_zero_findings(self):
        """Acceptance gate: RPR4xx report nothing unbaselined on src."""
        rules = [r for r in all_rules() if r.id.startswith("RPR4")]
        result = Analyzer(rules=rules, root=REPO).run([SRC])
        assert not result.errors
        assert [f.format() for f in result.findings] == []

    def test_messages_name_the_axes(self):
        result = run_rule("RPR401", "dataflow_shape.py")
        messages = " ".join(f.message for f in result.findings)
        assert "n_nodes" in messages and "n_edges" in messages


class TestNoqaSuppression:
    def _analyze(self, tmp_path: Path, line_comment: str):
        src = textwrap.dedent(
            f"""\
            import numpy as np

            def clobber(state):
                old = state.beliefs
                np.exp(state.beliefs, out=state.beliefs)  {line_comment}
                return old.sum()
            """
        )
        path = tmp_path / "noqa_case.py"
        path.write_text(src)
        rules = [r for r in all_rules() if r.id == "RPR403"]
        return Analyzer(rules=rules, root=tmp_path).run([path])

    def test_finding_fires_without_noqa(self, tmp_path):
        result = self._analyze(tmp_path, "")
        assert [f.rule for f in result.findings] == ["RPR403"]

    def test_multi_code_noqa(self, tmp_path):
        result = self._analyze(tmp_path, "# noqa: RPR101, RPR403")
        assert result.findings == []
        assert result.suppressed == 1

    def test_multi_code_noqa_other_rules_only(self, tmp_path):
        # codes that don't include RPR403 must not silence it
        result = self._analyze(tmp_path, "# noqa: RPR101, RPR102")
        assert [f.rule for f in result.findings] == ["RPR403"]

    def test_case_insensitive_noqa(self, tmp_path):
        result = self._analyze(tmp_path, "# NOQA: rpr403")
        assert result.findings == []
        assert result.suppressed == 1


class TestFingerprintStability:
    def test_stable_across_line_shifts(self, tmp_path):
        body = textwrap.dedent(
            """\
            import numpy as np

            def clobber(state):
                old = state.beliefs
                np.exp(state.beliefs, out=state.beliefs)
                return old.sum()
            """
        )
        rules = [r for r in all_rules() if r.id == "RPR403"]

        def fingerprints(prefix: str) -> dict[str, int]:
            path = tmp_path / "shifty.py"
            path.write_text(prefix + body)
            result = Analyzer(rules=rules, root=tmp_path).run([path])
            assert result.findings
            return {f.fingerprint: f.line for f in result.findings}

        plain = fingerprints("")
        shifted = fingerprints("# a comment pushing everything down\n" * 7)
        assert set(plain) == set(shifted)  # same fingerprints...
        assert set(plain.values()) != set(shifted.values())  # ...new lines


class TestSarif:
    def _result(self):
        return run_rule("RPR401", "dataflow_shape.py")

    def test_round_trip_validates(self):
        result = self._result()
        assert result.findings
        doc = render_sarif(result, all_rules())
        assert validate_sarif(doc) == []
        parsed = json.loads(doc)
        assert parsed["version"] == SARIF_VERSION
        run = parsed["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert len(run["results"]) == len(result.findings)
        first = run["results"][0]
        assert first["ruleId"] == "RPR401"
        loc = first["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("dataflow_shape.py")
        assert loc["region"]["startLine"] >= 1
        assert first["partialFingerprints"]["reproBaseline/v1"]

    def test_rule_catalog_indexes_resolve(self):
        parsed = json.loads(render_sarif(self._result(), all_rules()))
        run = parsed["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for res in run["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]

    def test_validator_rejects_broken_documents(self):
        assert validate_sarif("not json {") != []
        assert validate_sarif({"version": "2.0.0", "runs": []}) != []
        doc = json.loads(render_sarif(self._result(), all_rules()))
        doc["runs"][0]["results"][0]["ruleId"] = "RPR999"
        del doc["runs"][0]["results"][1]["message"]
        problems = validate_sarif(doc)
        assert any("RPR999" in p for p in problems)
        assert any("message.text" in p for p in problems)

    def test_cli_sarif_report(self, tmp_path, capsys):
        report = tmp_path / "findings.sarif"
        code = analysis_main([
            str(FIXTURES / "dataflow_shape.py"),
            "--rules", "RPR401",
            "--sarif", "--sarif-report", str(report),
        ])
        assert code == 1
        stdout_doc = capsys.readouterr().out
        assert validate_sarif(stdout_doc) == []
        assert validate_sarif(report.read_text()) == []


class TestUpdateBaseline:
    def test_preserves_reasons_across_line_shifts(self, tmp_path):
        result = run_rule("RPR402", "dataflow_dtype.py")
        assert result.findings
        path = tmp_path / "baseline.json"
        write_baseline(result.findings, path, reason="accepted f64 debt")

        # same rule+path, different fingerprints (as after a refactor):
        # the recorded reason must carry over to the regenerated entries
        moved = [f for f in result.findings]
        kept, dropped = update_baseline(moved, path)
        assert kept == len(
            {(f.rule, f.path) for f in moved}
        ) or kept >= 1
        regenerated = load_baseline(path)
        assert regenerated
        assert all(
            entry.get("reason") == "accepted f64 debt"
            for entry in regenerated.values()
        )

    def test_drops_stale_entries(self, tmp_path):
        dtype = run_rule("RPR402", "dataflow_dtype.py").findings
        shape = run_rule("RPR401", "dataflow_shape.py").findings
        path = tmp_path / "baseline.json"
        write_baseline(dtype + shape, path, reason="old debt")
        kept, dropped = update_baseline(shape, path)
        assert dropped >= len({f.fingerprint for f in dtype})
        regenerated = load_baseline(path)
        assert {e["rule"] for e in regenerated.values()} == {"RPR401"}

    def test_cli_update_baseline(self, tmp_path, capsys):
        fixture = str(FIXTURES / "dataflow_alias.py")
        path = tmp_path / "baseline.json"
        # without --baseline the flag is an error
        assert analysis_main([fixture, "--update-baseline"]) == 2
        assert analysis_main([
            fixture, "--rules", "RPR403",
            "--baseline", str(path), "--update-baseline",
        ]) == 0
        assert load_baseline(path)
        # the regenerated baseline green-lights the same scan
        assert analysis_main([
            fixture, "--rules", "RPR403", "--baseline", str(path),
        ]) == 0


class TestDataflowEngineInternals:
    def test_axis_lattice(self):
        from repro.analysis.dataflow import (
            ArrayValue,
            axes_broadcastable,
            join_values,
        )

        assert axes_broadcastable("n_nodes", "n_nodes")
        assert axes_broadcastable("n_nodes", "?")
        assert axes_broadcastable("n_nodes", "1")
        assert not axes_broadcastable("n_nodes", "n_edges")
        assert not axes_broadcastable("n_states", "7")

        a = ArrayValue(shape=("n_nodes", "n_states"), dtype="float32")
        b = ArrayValue(shape=("n_nodes", "n_states"), dtype="float64")
        joined = join_values(a, b)
        assert joined.shape == ("n_nodes", "n_states")
        assert joined.dtype is None  # branches disagree → unknown

    def test_contracts_derived_from_real_state(self):
        from repro.analysis.dataflow import DataflowProject

        sources = []
        for rel in ("core/state.py", "core/graph.py", "core/numeric.py"):
            path = SRC / "repro" / rel
            text = path.read_text()
            import ast as _ast

            sources.append((path, text, _ast.parse(text)))
        project = DataflowProject(sources)
        contracts = project.engine.class_contracts("LoopyState")
        assert contracts is not None
        beliefs = contracts.attrs["beliefs"]
        assert beliefs.shape == ("n_nodes", "n_states")
        assert beliefs.dtype == "float32"
        assert contracts.attrs["src"].index_space == "n_nodes"
        assert contracts.attrs["messages"].shape == ("n_edges", "n_states")

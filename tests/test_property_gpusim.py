"""Property-based tests on the cost models: monotonicity and sanity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.cpu_cost import I7_7700HQ, cpu_sweep_time
from repro.core.sweepstats import SweepStats
from repro.gpusim import GTX1070, V100, atomic_cost, launch_cost, transfer_time

SETTINGS = dict(max_examples=40, deadline=None)

@st.composite
def stats_strategy(draw):
    accesses = draw(st.integers(min_value=0, max_value=10**7))
    return SweepStats(
        nodes_processed=draw(st.integers(min_value=1, max_value=10**6)),
        edges_processed=draw(st.integers(min_value=1, max_value=10**7)),
        flops=draw(st.integers(min_value=0, max_value=10**10)),
        sequential_bytes=draw(st.integers(min_value=0, max_value=10**10)),
        # bytes consistent with the access count (the kernels' invariant)
        random_bytes=accesses * 8,
        random_accesses=accesses,
        atomic_ops=draw(st.integers(min_value=0, max_value=10**7)),
        reduction_elems=draw(st.integers(min_value=0, max_value=10**6)),
        kernel_launches=draw(st.integers(min_value=1, max_value=64)),
    )


class TestCostModelProperties:
    @given(stats_strategy())
    @settings(**SETTINGS)
    def test_kernel_cost_positive_and_finite(self, stats):
        cost = launch_cost(GTX1070, stats)
        assert cost.total > 0
        assert np.isfinite(cost.total)

    @given(stats_strategy(), st.integers(min_value=1, max_value=10**8))
    @settings(**SETTINGS)
    def test_more_flops_never_cheaper(self, stats, extra):
        base = launch_cost(GTX1070, stats).total
        bigger = SweepStats(**{**stats.__dict__, "flops": stats.flops + extra})
        assert launch_cost(GTX1070, bigger).total >= base - 1e-15

    @given(stats_strategy())
    @settings(**SETTINGS)
    def test_volta_kernels_never_slower_for_same_work(self, stats):
        pascal = launch_cost(GTX1070, stats)
        volta = launch_cost(V100, stats)
        # V100 dominates the GTX 1070 on every axis of the spec
        assert volta.total <= pascal.total * 1.05

    @given(
        st.integers(min_value=0, max_value=10**8),
        st.integers(min_value=1, max_value=10**7),
    )
    @settings(**SETTINGS)
    def test_atomic_cost_monotone_in_ops(self, ops, targets):
        t1 = atomic_cost(GTX1070, ops, targets)
        t2 = atomic_cost(GTX1070, ops + 1000, targets)
        assert t2 >= t1 >= 0.0

    @given(
        st.integers(min_value=1, max_value=10**7),
        st.integers(min_value=1, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_more_targets_never_more_contention(self, ops, targets):
        sparse = atomic_cost(GTX1070, ops, targets * 2)
        dense = atomic_cost(GTX1070, ops, targets)
        assert sparse <= dense + 1e-15

    @given(st.integers(min_value=0, max_value=10**10), st.integers(min_value=1, max_value=64))
    @settings(**SETTINGS)
    def test_transfer_monotone(self, nbytes, calls):
        t1 = transfer_time(GTX1070, nbytes, calls=calls)
        t2 = transfer_time(GTX1070, nbytes + 4096, calls=calls)
        t3 = transfer_time(GTX1070, nbytes, calls=calls + 1)
        assert t2 >= t1 and t3 >= t1

    @given(stats_strategy())
    @settings(**SETTINGS)
    def test_cpu_cost_positive_and_monotone_in_misses(self, stats):
        base = cpu_sweep_time(I7_7700HQ, stats, gather_bytes=8.0)
        assert base >= 0 and np.isfinite(base)
        more = SweepStats(
            **{**stats.__dict__, "random_accesses": stats.random_accesses + 10_000}
        )
        assert cpu_sweep_time(I7_7700HQ, more, gather_bytes=8.0) >= base

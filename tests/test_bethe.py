"""Bethe free energy (extension; the paper's reference [18])."""

import numpy as np
import pytest

from repro.core import LoopyBP
from repro.core.bethe import (
    bethe_free_energy,
    bethe_log_partition,
    pairwise_pseudo_marginals,
)
from repro.core.convergence import ConvergenceCriterion
from repro.core.exact import exact_log_partition
from repro.core.state import LoopyState
from tests.conftest import make_loopy_graph, make_tree_graph

_TIGHT = ConvergenceCriterion(threshold=1e-9, max_iterations=500)


def _converged_state(graph):
    state = LoopyState(graph)
    LoopyBP(criterion=_TIGHT).run(graph, state=state)
    return state


class TestPairwiseMarginals:
    def test_normalized_and_one_per_undirected_edge(self):
        g = make_loopy_graph(seed=1)
        state = _converged_state(g)
        joints = pairwise_pseudo_marginals(state)
        assert len(joints) == g.n_edges // 2
        for b_uv in joints.values():
            assert b_uv.sum() == pytest.approx(1.0, abs=1e-9)
            assert (b_uv >= 0).all()

    def test_marginalizing_edge_belief_recovers_node_belief_on_tree(self):
        """Local consistency: Σ_{x_v} b_uv = b_u at a BP fixed point."""
        g = make_tree_graph(seed=2, n_nodes=6)
        state = _converged_state(g)
        for e, b_uv in pairwise_pseudo_marginals(state).items():
            u, v = int(state.src[e]), int(state.dst[e])
            np.testing.assert_allclose(b_uv.sum(axis=1), state.beliefs[u], atol=5e-4)
            np.testing.assert_allclose(b_uv.sum(axis=0), state.beliefs[v], atol=5e-4)


class TestBetheLogZ:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_trees(self, seed):
        g = make_tree_graph(seed=seed, n_nodes=7)
        state = _converged_state(g)
        assert bethe_log_partition(g, state) == pytest.approx(
            exact_log_partition(g), abs=1e-4
        )

    def test_close_on_weakly_coupled_loops(self):
        g = make_loopy_graph(seed=3, n_nodes=10, n_edges=14, coupling=0.6)
        state = _converged_state(g)
        assert bethe_log_partition(g, state) == pytest.approx(
            exact_log_partition(g), abs=0.05
        )

    def test_three_state_tree(self):
        g = make_tree_graph(seed=5, n_states=3, n_nodes=6)
        state = _converged_state(g)
        assert bethe_log_partition(g, state) == pytest.approx(
            exact_log_partition(g), abs=1e-3
        )

    def test_free_energy_is_negative_log_z(self):
        g = make_tree_graph(seed=6)
        state = _converged_state(g)
        assert bethe_free_energy(g, state) == pytest.approx(
            -bethe_log_partition(g, state)
        )

    def test_unconverged_beliefs_score_worse_on_trees(self):
        """The free energy is minimized at the fixed point: the uniform
        starting state must not beat the converged one."""
        g = make_tree_graph(seed=7)
        fresh = LoopyState(g.copy())
        converged = _converged_state(g)
        exact = exact_log_partition(g)
        err_fresh = abs(-bethe_free_energy(g, fresh) - exact)
        err_conv = abs(-bethe_free_energy(g, converged) - exact)
        assert err_conv <= err_fresh + 1e-9

"""The §5.2 graph-framework substrate: operators, semirings, algorithms."""

import networkx as nx
import numpy as np
import pytest

from repro.frameworks import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    FrontierFramework,
    FrontierProgram,
    SemiringSpmv,
    bfs_depths,
    connected_components,
    pagerank,
    sssp,
    why_not_bp,
)
from repro.frameworks.csr import CsrGraph
from tests.conftest import make_loopy_graph


def random_csr(n=50, m=140, seed=0, weighted=True):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    weights = rng.uniform(0.1, 2.0, size=m) if weighted else None
    return CsrGraph(n, edges[:, 0], edges[:, 1], weights), edges, weights


def to_networkx(n, edges, weights=None):
    G = nx.DiGraph()
    G.add_nodes_from(range(n))
    for i, (u, v) in enumerate(edges):
        w = float(weights[i]) if weights is not None else 1.0
        if G.has_edge(int(u), int(v)):
            G[int(u)][int(v)]["weight"] = min(G[int(u)][int(v)]["weight"], w)
        else:
            G.add_edge(int(u), int(v), weight=w)
    return G


class TestCsr:
    def test_structure(self):
        g = CsrGraph(4, [0, 0, 2], [1, 3, 1])
        assert g.n_edges == 3
        assert sorted(g.neighbours(0).tolist()) == [1, 3]
        np.testing.assert_array_equal(g.out_degree(), [2, 0, 1, 0])

    def test_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            CsrGraph(2, [0], [5])
        with pytest.raises(ValueError, match="weights"):
            CsrGraph(2, [0], [1], [1.0, 2.0])

    def test_from_belief_graph_drops_rich_data(self):
        g = make_loopy_graph(seed=1)
        csr = CsrGraph.from_belief_graph(g)
        assert csr.n_edges == g.n_edges
        assert csr.weights.ndim == 1  # scalars only — the §5.2 point


class TestAlgorithmsVsNetworkx:
    def test_sssp_matches_dijkstra(self):
        g, edges, weights = random_csr(seed=3)
        got = sssp(g, 0)
        expected = nx.single_source_dijkstra_path_length(
            to_networkx(g.n_nodes, edges, weights), 0
        )
        for node, dist in expected.items():
            assert got[node] == pytest.approx(dist)
        unreachable = set(range(g.n_nodes)) - set(expected)
        assert all(np.isinf(got[v]) for v in unreachable)

    def test_bfs_matches_networkx(self):
        g, edges, _ = random_csr(seed=4, weighted=False)
        got = bfs_depths(g, 0)
        expected = nx.single_source_shortest_path_length(
            to_networkx(g.n_nodes, edges), 0
        )
        for node, depth in expected.items():
            assert got[node] == depth

    def test_pagerank_matches_networkx(self):
        g, edges, _ = random_csr(seed=5, weighted=False)
        simple = np.unique(edges, axis=0)
        g2 = CsrGraph(g.n_nodes, simple[:, 0], simple[:, 1])
        got = pagerank(g2)
        expected = nx.pagerank(
            nx.DiGraph([(int(u), int(v)) for u, v in simple]), alpha=0.85
        )
        # networkx stops at its own (looser) tolerance; allow its residual
        for node, score in expected.items():
            assert got[node] == pytest.approx(score, abs=5e-4)
        assert got.sum() == pytest.approx(1.0)

    def test_components_match_networkx(self):
        g, edges, _ = random_csr(n=40, m=50, seed=6)
        got = connected_components(g)
        expected = list(
            nx.weakly_connected_components(to_networkx(g.n_nodes, edges))
        )
        assert got.max() + 1 == len(expected)
        for comp in expected:
            members = list(comp)
            assert len(set(got[members].tolist())) == 1


class TestSemiring:
    def test_min_plus_is_one_relaxation_step(self):
        g = CsrGraph(3, [0, 1], [1, 2], [2.0, 3.0])
        x = np.array([0.0, np.inf, np.inf])
        y = SemiringSpmv(g).multiply(x, MIN_PLUS)
        np.testing.assert_allclose(y, [np.inf, 2.0, np.inf])

    def test_or_and_reachability(self):
        g = CsrGraph(3, [0, 1], [1, 2], [1.0, 1.0])
        x = np.array([1.0, 0.0, 0.0])
        y = SemiringSpmv(g).multiply(x, OR_AND)
        assert y[1] == 1.0 and y[2] == 0.0

    def test_plus_times_is_spmv(self):
        g = CsrGraph(2, [0, 1], [1, 0], [3.0, 5.0])
        y = SemiringSpmv(g).multiply(np.array([2.0, 1.0]), PLUS_TIMES)
        np.testing.assert_allclose(y, [5.0, 6.0])

    def test_rejects_vector_state(self):
        g, *_ = random_csr()
        with pytest.raises(ValueError, match="one scalar per node"):
            SemiringSpmv(g).multiply(np.zeros((g.n_nodes, 2)), PLUS_TIMES)


class TestFrontier:
    def test_rejects_vector_state(self):
        g, *_ = random_csr()
        program = FrontierProgram(advance=lambda s, w, d: s, combine="min")
        with pytest.raises(ValueError, match="one scalar per node"):
            FrontierFramework(g).run(
                program, np.zeros((g.n_nodes, 3)), np.array([0])
            )

    def test_unknown_combine(self):
        with pytest.raises(ValueError, match="combine"):
            FrontierProgram(advance=lambda s, w, d: s, combine="normalized-product")

    def test_terminates_when_frontier_empties(self):
        g = CsrGraph(3, [0], [1], [1.0])
        program = FrontierProgram(advance=lambda s, w, d: s + w, combine="min")
        vals = np.array([0.0, np.inf, np.inf])
        result = FrontierFramework(g).run(program, vals, np.array([0]))
        assert result.iterations <= 2
        assert result.values[1] == 1.0 and np.isinf(result.values[2])


class TestWhyNotBP:
    def test_limitations_enumerated_and_demonstrated(self):
        g = make_loopy_graph(seed=2)
        limits = why_not_bp(g)
        assert len(limits) >= 4
        # the two data-model rejections actually fired
        fired = [l for l in limits if "rejected" in l.demonstrated_by]
        assert len(fired) >= 2

    def test_bp_still_runs_on_credo(self):
        """The §5.2 punchline: the same graph the frameworks reject is
        Credo's bread and butter."""
        from repro.core import LoopyBP

        g = make_loopy_graph(seed=2)
        assert LoopyBP().run(g).converged

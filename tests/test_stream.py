"""repro.stream: streaming construction, graph deltas, incremental re-convergence.

Three load-bearing guarantees:

1. a streamed MTX load is structurally bit-identical to the batch reader
   (same arrays, same potential mode, same errors);
2. replaying a delta journal reproduces the incrementally maintained graph
   bit-exactly (structure arrays, potentials, evidence);
3. warm-started incremental re-convergence matches a cold full run to
   ≤ 1e-6 across every schedule × paradigm while sweeping strictly fewer
   edges.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP, LoopyConfig
from repro.core.observation import observe
from repro.core.scheduler import SCHEDULES, make_schedule
from repro.graphs.grids import grid_graph
from repro.core.potentials import attractive_potential
from repro.io.detect import load_graph
from repro.io.mtx import MtxFormatError, read_mtx_graph, write_mtx_graph
from repro.partition import extend_partition, make_partition
from repro.stream import (
    DeltaJournal,
    GraphDelta,
    GrowableArray,
    IncrementalEngine,
    StreamingGraphBuilder,
    apply_delta,
    load_graph_stream,
)

PARADIGMS = ("node", "edge")


def tight_config(schedule="work_queue", paradigm="node", threshold=1e-7):
    return LoopyConfig(
        paradigm=paradigm,
        schedule=schedule,
        criterion=ConvergenceCriterion(threshold, 500),
    )


def assert_graphs_identical(a: BeliefGraph, b: BeliefGraph):
    """Bit-exact structural equality (the journal/replay contract)."""
    assert a.n_nodes == b.n_nodes and a.n_edges == b.n_edges
    assert np.array_equal(a.src, b.src)
    assert np.array_equal(a.dst, b.dst)
    assert np.array_equal(a.reverse_edge, b.reverse_edge)
    assert np.array_equal(a.priors.dense(), b.priors.dense())
    assert np.array_equal(a.potentials.stacked(), b.potentials.stacked())
    assert a.potentials.shared == b.potentials.shared
    assert np.array_equal(a.observed, b.observed)
    assert np.array_equal(a.observed_state, b.observed_state)
    assert a.node_names == b.node_names


# ---------------------------------------------------------------------------
class TestGrowableArray:
    def test_append_and_view(self):
        arr = GrowableArray((), np.int64, capacity=2)
        for i in range(10):
            assert arr.append(i) == i
        assert len(arr) == 10
        assert arr.capacity >= 10
        assert np.array_equal(arr.view, np.arange(10))

    def test_extend_validates_row_shape(self):
        arr = GrowableArray((3,), np.float32, capacity=2)
        arr.extend(np.ones((5, 3), dtype=np.float32))
        assert len(arr) == 5
        with pytest.raises(ValueError, match="row shape"):
            arr.extend(np.ones((2, 4), dtype=np.float32))

    def test_growth_doubles(self):
        arr = GrowableArray((), np.int64, capacity=4)
        arr.extend(np.arange(5))
        assert arr.capacity == 8  # doubled, not size-fit

    def test_old_views_survive_regrow(self):
        arr = GrowableArray((), np.int64, capacity=4)
        arr.extend(np.arange(4))
        old = arr.view
        arr.extend(np.arange(100))
        assert np.array_equal(old, np.arange(4))  # still the old buffer

    def test_slack_accounting(self):
        arr = GrowableArray((), np.int64, capacity=8)
        assert arr.slack_nbytes == 8 * 8
        arr.extend(np.arange(3))
        assert arr.slack_nbytes == 5 * 8


# ---------------------------------------------------------------------------
class TestStreamingLoader:
    @pytest.fixture
    def mtx_pair(self, tmp_path):
        g = grid_graph(6, 7, seed=4)
        nodes, edges = tmp_path / "g.nodes", tmp_path / "g.edges"
        write_mtx_graph(g, nodes, edges)
        return nodes, edges

    @pytest.mark.parametrize("chunk", [3, 64, 10**6])
    def test_bitwise_equal_to_batch(self, mtx_pair, chunk):
        nodes, edges = mtx_pair
        batch = read_mtx_graph(nodes, edges)
        streamed = load_graph_stream(nodes, edges, chunk_edges=chunk)
        assert_graphs_identical(batch, streamed)

    def test_per_edge_matrices(self, tmp_path):
        rng = np.random.default_rng(0)
        g = BeliefGraph.from_undirected(
            rng.random((5, 2)).astype(np.float32),
            [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
            per_edge_potentials=rng.random((5, 2, 2)).astype(np.float32),
        )
        nodes, edges = tmp_path / "p.nodes", tmp_path / "p.edges"
        write_mtx_graph(g, nodes, edges)
        batch = read_mtx_graph(nodes, edges)
        streamed = load_graph_stream(nodes, edges, chunk_edges=2)
        assert not streamed.potentials.shared
        assert_graphs_identical(batch, streamed)

    def test_non_symmetric_shared_goes_per_edge(self, tmp_path):
        rng = np.random.default_rng(1)
        g = BeliefGraph.from_undirected(
            rng.random((4, 2)).astype(np.float32),
            [(0, 1), (1, 2), (2, 3)],
            potential=np.array([[0.9, 0.1], [0.4, 0.6]], np.float32),
        )
        nodes, edges = tmp_path / "ns.nodes", tmp_path / "ns.edges"
        write_mtx_graph(g, nodes, edges)
        batch = read_mtx_graph(nodes, edges)
        streamed = load_graph_stream(nodes, edges, chunk_edges=1)
        assert not streamed.potentials.shared
        assert_graphs_identical(batch, streamed)

    def test_out_of_order_node_entries(self, mtx_pair):
        nodes, edges = mtx_pair
        lines = nodes.read_text().splitlines()
        header = [ln for ln in lines if ln.startswith("%") or not ln[:1].isdigit()]
        entries = [ln for ln in lines if ln[:1].isdigit()]
        # first data line is the size header; keep it in place, shuffle the rest
        size, data = entries[0], entries[1:]
        shuffled = nodes.with_suffix(".shuf")
        shuffled.write_text("\n".join(header + [size] + data[::-1]) + "\n")
        assert_graphs_identical(
            read_mtx_graph(nodes, edges), load_graph_stream(shuffled, edges)
        )

    def test_error_parity_with_batch_reader(self, mtx_pair, tmp_path):
        nodes, edges = mtx_pair
        truncated = tmp_path / "bad.edges"
        truncated.write_text("".join(edges.read_text().splitlines(True)[:-1]))
        with pytest.raises(MtxFormatError) as batch_err:
            read_mtx_graph(nodes, truncated)
        with pytest.raises(MtxFormatError) as stream_err:
            load_graph_stream(nodes, truncated)
        assert str(batch_err.value).replace("bad.edges", "X") == str(
            stream_err.value
        ).replace("bad.edges", "X")

    def test_malformed_lines_carry_line_numbers(self, mtx_pair, tmp_path):
        nodes, edges = mtx_pair
        bad = tmp_path / "mal.edges"
        text = edges.read_text().splitlines(True)
        text[-1] = "not numbers\n"
        bad.write_text("".join(text))
        with pytest.raises(MtxFormatError, match=r"line \d+"):
            load_graph_stream(nodes, bad)

    def test_reserved_footprint(self, mtx_pair):
        nodes, edges = mtx_pair
        streamed = load_graph_stream(nodes, edges)
        fp = streamed.memory_footprint()
        assert fp["reserved"] == streamed.reserved_nbytes >= 0
        batch = read_mtx_graph(nodes, edges)
        assert batch.memory_footprint()["reserved"] == 0

    def test_load_graph_stream_kwarg(self, mtx_pair):
        nodes, edges = mtx_pair
        assert_graphs_identical(
            load_graph(nodes, edges),
            load_graph(nodes, edges, stream=True, chunk_edges=16),
        )

    def test_stream_rejects_bif(self, tmp_path):
        bif = Path(__file__).parent.parent / "examples" / "family_out.bif"
        if not bif.exists():
            pytest.skip("example BIF not present")
        with pytest.raises(ValueError, match="MTX"):
            load_graph(bif, stream=True)

    def test_streamed_posterior_parity(self, mtx_pair):
        nodes, edges = mtx_pair
        cfg = tight_config()
        a = LoopyBP(cfg).run(read_mtx_graph(nodes, edges))
        b = LoopyBP(cfg).run(load_graph_stream(nodes, edges, chunk_edges=8))
        np.testing.assert_array_equal(np.asarray(a.beliefs), np.asarray(b.beliefs))


class TestStreamingBuilder:
    def test_matches_from_undirected(self):
        rng = np.random.default_rng(7)
        priors = rng.random((8, 3)).astype(np.float32)
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (6, 7), (2, 6)]
        pot = attractive_potential(3, 0.8)
        reference = BeliefGraph.from_undirected(priors, edges, pot)

        builder = StreamingGraphBuilder(3)
        for row in priors:
            builder.add_node(row)
        builder.set_shared_potential(pot)
        builder.add_undirected_edges(np.array(edges))
        assert_graphs_identical(reference, builder.build())

    def test_drops_self_loops(self):
        builder = StreamingGraphBuilder(2)
        builder.add_nodes(3)
        builder.set_shared_potential(attractive_potential(2, 0.6))
        added = builder.add_undirected_edges(np.array([[0, 0], [0, 1], [2, 2]]))
        assert added == 1
        assert builder.n_edges == 2

    def test_from_graph_extension(self):
        g = grid_graph(3, 3, seed=2)
        builder = StreamingGraphBuilder.from_graph(g)
        nid = builder.add_node()
        builder.add_undirected_edge(nid, 0)
        extended = builder.build()
        assert extended.n_nodes == g.n_nodes + 1
        assert extended.n_edges == g.n_edges + 2
        # the original prefix is untouched
        assert np.array_equal(extended.src[: g.n_edges], g.src)
        assert np.array_equal(extended.reverse_edge[: g.n_edges], g.reverse_edge)

    def test_edge_endpoint_validation(self):
        builder = StreamingGraphBuilder(2)
        builder.add_nodes(2)
        builder.set_shared_potential(attractive_potential(2, 0.6))
        with pytest.raises(ValueError, match="out of range"):
            builder.add_undirected_edge(0, 5)

    def test_edges_need_a_potential(self):
        builder = StreamingGraphBuilder(2)
        builder.add_nodes(2)
        with pytest.raises(ValueError, match="potential"):
            builder.add_undirected_edge(0, 1)


# ---------------------------------------------------------------------------
class TestGraphDelta:
    def test_payload_roundtrip(self):
        delta = (
            GraphDelta()
            .add_node(name="x", prior=[0.2, 0.8])
            .add_edge("x", "0")
            .remove_edge("1", "2")
            .detach_node("3")
            .observe_node("4", 1)
            .release_node("5")
        )
        clone = GraphDelta.from_payload(
            json.loads(json.dumps(delta.to_payload()))
        )
        assert clone.to_payload() == delta.to_payload()
        assert clone.structural and not clone.empty

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            GraphDelta.from_payload({"add_edges": [["only-one-endpoint"]]})
        with pytest.raises(ValueError):
            GraphDelta.from_payload({"observe": [["n", 1, 2]]})
        with pytest.raises(ValueError):
            GraphDelta.from_payload({"add_nodes": ["not-a-mapping"]})

    def test_apply_never_mutates_input(self):
        g = grid_graph(3, 3, seed=1)
        src0 = g.src.copy()
        res = apply_delta(g, GraphDelta().add_node(name="p").add_edge("p", "0"))
        assert np.array_equal(g.src, src0)
        assert g.n_nodes == 9 and res.graph.n_nodes == 10

    def test_structural_bookkeeping(self):
        g = grid_graph(3, 3, seed=1)
        res = apply_delta(
            g, GraphDelta().add_node(name="p").add_edge("p", "4").remove_edge("0", "1")
        )
        assert res.structural
        assert res.added_nodes == 1 and res.added_edges == 2 and res.removed_edges == 2
        assert {0, 1, 4, 9} <= set(res.dirty_nodes.tolist())
        # kept directed edges map injectively, dropped ones to -1
        kept = res.edge_map[res.edge_map >= 0]
        assert len(set(kept.tolist())) == len(kept)
        assert (res.edge_map == -1).sum() == 2

    def test_evidence_only_shares_structure(self):
        g = grid_graph(3, 3, seed=1)
        res = apply_delta(g, GraphDelta().observe_node("4", 1))
        assert not res.structural and res.edge_map is None
        assert res.graph.src is g.src  # copy() shares structure arrays
        assert res.graph.observed[4] and not g.observed[4]

    def test_detach_node(self):
        g = grid_graph(3, 3, seed=1)
        observe(g, 4, 0)
        res = apply_delta(g, GraphDelta().detach_node("4"))
        new = res.graph
        assert len(new.in_edges(4)) == 0 and len(new.out_edges(4)) == 0
        assert not new.observed[4]
        np.testing.assert_allclose(new.priors.dense()[4], 0.5)

    @pytest.mark.parametrize(
        "build, match",
        [
            (lambda: GraphDelta().add_edge("0", "0"), "self loop"),
            (lambda: GraphDelta().add_edge("0", "1"), "already exists"),
            (lambda: GraphDelta().add_edge("0", "5").add_edge("5", "0"), "twice"),
            (lambda: GraphDelta().remove_edge("0", "8"), "no edge"),
            (lambda: GraphDelta().add_node(name="0"), "already exists"),
            (lambda: GraphDelta().add_node(prior=[1.0]), "needs 2 values"),
            (lambda: GraphDelta().add_node(prior=[-1.0, 2.0]), "not a valid"),
            (
                lambda: GraphDelta().add_edge("0", "5", np.ones((3, 3))),
                r"must be \(2, 2\)",
            ),
        ],
    )
    def test_rejects_invalid_operations(self, build, match):
        g = grid_graph(3, 3, seed=1)
        with pytest.raises((ValueError, KeyError), match=match):
            apply_delta(g, build())

    def test_heterogeneous_rejected(self):
        rng = np.random.default_rng(0)
        g = BeliefGraph(
            [rng.random(2), rng.random(3)],
            np.array([0]), np.array([1]),
            np.ones((1, 3, 3), np.float32),
        )
        with pytest.raises(ValueError, match="constant-width"):
            apply_delta(g, GraphDelta().observe_node(0, 1))


def random_delta(graph: BeliefGraph, rng: np.random.Generator, tag: int) -> GraphDelta:
    """One random valid delta against ``graph`` (for the replay property test)."""
    delta = GraphDelta()
    pairs = {(int(s), int(d)) for s, d in zip(graph.src, graph.dst)}
    choice = rng.integers(0, 4)
    if choice == 0:
        name = f"n{tag}"
        delta.add_node(name=name, prior=rng.random(graph.n_states) + 0.1)
        delta.add_edge(name, int(rng.integers(0, graph.n_nodes)))
    elif choice == 1:
        for _ in range(8):  # find a non-edge
            u, v = rng.integers(0, graph.n_nodes, 2)
            if u != v and (int(u), int(v)) not in pairs and (int(v), int(u)) not in pairs:
                delta.add_edge(int(u), int(v))
                break
    elif choice == 2 and graph.n_edges:
        e = int(rng.integers(0, graph.n_edges))
        delta.remove_edge(int(graph.src[e]), int(graph.dst[e]))
    else:
        delta.observe_node(int(rng.integers(0, graph.n_nodes)), int(rng.integers(0, graph.n_states)))
    return delta


class TestDeltaJournal:
    @pytest.mark.parametrize("seed", range(5))
    def test_replay_reproduces_graph_bit_exactly(self, seed, tmp_path):
        rng = np.random.default_rng(seed)
        base = grid_graph(4, 4, seed=seed)
        journal = DeltaJournal()
        live = base
        for tag in range(12):
            delta = random_delta(live, rng, tag)
            if delta.empty:
                continue
            live = apply_delta(live, delta).graph
            journal.append(delta)

        path = tmp_path / "journal.jsonl"
        journal.save(path)
        loaded = DeltaJournal.load(path)
        assert len(loaded) == len(journal)
        replayed = loaded.replay(grid_graph(4, 4, seed=seed))
        assert_graphs_identical(live, replayed)

    def test_empty_journal_roundtrip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        DeltaJournal().save(path)
        assert len(DeltaJournal.load(path)) == 0


# ---------------------------------------------------------------------------
class TestSchedulerWarmStart:
    def test_work_queue_seed_dedupes(self):
        from repro.core.scheduler import WorkQueue

        queue = WorkQueue(10, element_threshold=1e-3)
        queue.seed(np.array([3, 5, 3, 7], dtype=np.int64))
        assert queue.active.tolist() == [3, 5, 7]
        assert len(queue) == 3

    @pytest.mark.parametrize("name", SCHEDULES)
    def test_restrict_narrows_initial_set(self, name):
        schedule = make_schedule(name, 10, element_threshold=1e-3, seed=0)
        schedule.restrict(np.array([2, 4], dtype=np.int64))
        if name == "sync":
            return  # exhaustive by contract; restrict is a documented no-op
        active = schedule.active
        assert set(np.asarray(active).tolist()) <= {2, 4} and len(active)


class TestIncrementalEngine:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_evidence_parity_and_fewer_edges(self, schedule, paradigm):
        cfg = tight_config(schedule, paradigm, threshold=1e-8)
        g = grid_graph(5, 5, seed=3)
        eng = IncrementalEngine(g, cfg)
        eng.converge()
        inc = eng.apply(GraphDelta().observe_node("7", 1))
        assert inc.mode == "incremental" and not inc.structural

        ref = g.copy()
        observe(ref, 7, 1)
        full = LoopyBP(cfg).run(ref)
        assert np.abs(np.asarray(inc.beliefs) - np.asarray(full.beliefs)).max() <= 1e-6
        assert inc.edges_swept < full.run_stats.total.edges_processed

    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("paradigm", PARADIGMS)
    def test_structural_parity_and_fewer_edges(self, schedule, paradigm):
        cfg = tight_config(schedule, paradigm, threshold=1e-7)
        g = grid_graph(5, 5, seed=3)
        eng = IncrementalEngine(g, cfg)
        eng.converge()
        inc = eng.apply(
            GraphDelta().add_node(name="probe", prior=[0.7, 0.3]).add_edge("probe", "12")
        )
        assert inc.mode == "incremental" and inc.structural
        assert not inc.reused_lowerings  # structure changed

        full = LoopyBP(cfg).run(eng.graph.copy())
        assert np.abs(np.asarray(inc.beliefs) - np.asarray(full.beliefs)).max() <= 1e-6
        assert inc.edges_swept < full.run_stats.total.edges_processed

    def test_evidence_updates_reuse_lowerings(self):
        cfg = tight_config()
        eng = IncrementalEngine(grid_graph(4, 4, seed=1), cfg)
        eng.converge()
        cache_before = dict(eng._executor_cache)
        inc = eng.apply(GraphDelta().observe_node("5", 1))
        assert inc.reused_lowerings
        for key, executor in cache_before.items():
            assert eng._executor_cache[key] is executor

    def test_large_dirty_fraction_falls_back_to_full(self):
        cfg = tight_config()
        g = grid_graph(4, 4, seed=1)
        eng = IncrementalEngine(g, cfg, dirty_max_fraction=0.05)
        eng.converge()
        delta = GraphDelta()
        for node in range(8):
            delta.observe_node(str(node), 0)
        inc = eng.apply(delta)
        assert inc.mode == "full"

    def test_first_apply_without_converge_is_full(self):
        eng = IncrementalEngine(grid_graph(3, 3, seed=1), tight_config())
        inc = eng.apply(GraphDelta().observe_node("4", 1))
        assert inc.mode == "full"

    def test_sequence_of_deltas_stays_correct(self):
        cfg = tight_config("residual", "node", threshold=1e-8)
        g = grid_graph(4, 5, seed=6)
        eng = IncrementalEngine(g, cfg)
        eng.converge()
        deltas = [
            GraphDelta().observe_node("3", 1),
            GraphDelta().add_node(name="x").add_edge("x", "10"),
            GraphDelta().observe_node("x", 0),
            GraphDelta().remove_edge("0", "1"),
            GraphDelta().release_node("3"),
        ]
        for delta in deltas:
            inc = eng.apply(delta)
            full = LoopyBP(cfg).run(eng.graph.copy())
            assert (
                np.abs(np.asarray(inc.beliefs) - np.asarray(full.beliefs)).max() <= 1e-6
            )

    def test_update_mode_selector(self):
        from repro.credo.selector import CredoSelector, INCREMENTAL_DIRTY_MAX_FRACTION

        selector = CredoSelector()
        assert selector.select_update_mode(0.01) == "incremental"
        assert (
            selector.select_update_mode(INCREMENTAL_DIRTY_MAX_FRACTION + 0.01)
            == "full"
        )


# ---------------------------------------------------------------------------
class TestExtendPartition:
    def test_preserves_existing_assignment(self):
        g = grid_graph(6, 6, seed=2)
        part = make_partition(g, 4, "bfs")
        res = apply_delta(g, GraphDelta().add_node(name="p").add_edge("p", "0"))
        grown = extend_partition(part, res.graph)
        assert np.array_equal(grown.assignment[: g.n_nodes], part.assignment)
        assert grown.n_shards == part.n_shards

    def test_new_nodes_follow_neighbours(self):
        g = grid_graph(6, 6, seed=2)
        part = make_partition(g, 4, "bfs")
        res = apply_delta(g, GraphDelta().add_node(name="p").add_edge("p", "0"))
        grown = extend_partition(part, res.graph)
        # the only neighbour of the new node is node 0 — affinity wins
        assert grown.assignment[-1] == part.assignment[0]

    def test_isolated_new_node_goes_least_loaded(self):
        g = grid_graph(4, 4, seed=2)
        part = make_partition(g, 3, "range")
        res = apply_delta(g, GraphDelta().add_node(name="loner"))
        grown = extend_partition(part, res.graph)
        loads = np.bincount(part.assignment, minlength=3)
        assert grown.assignment[-1] == int(np.argmin(loads))

    def test_statistics_are_remeasured(self):
        g = grid_graph(5, 5, seed=2)
        part = make_partition(g, 2, "bfs")
        res = apply_delta(g, GraphDelta().add_node(name="p").add_edge("p", "24"))
        grown = extend_partition(part, res.graph)
        assert grown.n_edges == res.graph.n_edges
        fresh = make_partition(res.graph, 2, "bfs")
        assert grown.cut_fraction <= 1.0 and fresh.n_edges == grown.n_edges

    def test_rejects_shrunken_graph(self):
        g = grid_graph(4, 4, seed=2)
        part = make_partition(g, 2, "bfs")
        with pytest.raises(ValueError, match="never shrink"):
            extend_partition(part, grid_graph(3, 3, seed=2))

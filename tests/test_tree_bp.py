"""The original three-phase BP (paper §2.1)."""

import numpy as np
import pytest

from repro.core import TreeBP, exact_marginals, observe
from repro.core.convergence import ConvergenceCriterion
from repro.core.tree_bp import bfs_levels
from tests.conftest import make_loopy_graph, make_tree_graph


class TestLevels:
    def test_root_is_level_zero(self, tree_graph):
        levels = bfs_levels(tree_graph)
        assert levels[0] == 0
        assert (levels >= 0).all()

    def test_levels_differ_by_one_on_tree_edges(self, tree_graph):
        levels = bfs_levels(tree_graph)
        for e in range(tree_graph.n_edges):
            u, v = int(tree_graph.src[e]), int(tree_graph.dst[e])
            assert abs(levels[u] - levels[v]) == 1

    def test_multiple_components(self):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        priors = np.full((4, 2), 0.5)
        g = BeliefGraph.from_undirected(
            priors, np.array([[0, 1], [2, 3]]), attractive_potential(2, 0.8)
        )
        levels = bfs_levels(g)
        assert (levels >= 0).all()
        assert levels[0] == 0 and levels[2] == 0

    def test_custom_roots(self, tree_graph):
        levels = bfs_levels(tree_graph, roots=[3])
        assert levels[3] == 0


class TestTreeBPExactness:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_on_random_trees(self, seed):
        g = make_tree_graph(seed=seed, n_nodes=8)
        expected = exact_marginals(g)
        result = TreeBP().run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-4)

    def test_exact_with_evidence(self):
        g = make_tree_graph(seed=31)
        observe(g, 3, 1)
        expected = exact_marginals(g)
        result = TreeBP().run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-4)

    def test_three_state_tree(self):
        g = make_tree_graph(seed=32, n_states=3)
        expected = exact_marginals(g)
        result = TreeBP().run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-4)

    def test_converges_in_two_rounds_on_tree(self):
        g = make_tree_graph(seed=33)
        result = TreeBP().run(g)
        # round 1 computes the exact answer; round 2 confirms (delta 0)
        assert result.iterations == 2

    def test_writes_beliefs_back_to_graph(self):
        g = make_tree_graph(seed=34)
        result = TreeBP().run(g)
        np.testing.assert_allclose(g.beliefs.dense(), result.beliefs, atol=1e-6)


class TestTreeBPOnCycles:
    def test_runs_and_converges_on_loopy_graph(self):
        g = make_loopy_graph(seed=35)
        result = TreeBP().run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-5)

    def test_agrees_with_loopy_bp_fixed_point(self):
        from repro.core import LoopyBP

        g = make_loopy_graph(seed=36, n_nodes=10, n_edges=14, coupling=0.6)
        crit = ConvergenceCriterion(threshold=1e-7, max_iterations=500)
        tree_result = TreeBP(criterion=crit).run(g.copy())
        loopy_result = LoopyBP(criterion=crit, work_queue=False).run(g.copy())
        np.testing.assert_allclose(
            tree_result.beliefs, loopy_result.beliefs, atol=5e-3
        )

    def test_respects_iteration_cap(self):
        g = make_loopy_graph(seed=37, coupling=0.95)
        result = TreeBP(criterion=ConvergenceCriterion(threshold=1e-12, max_iterations=3)).run(g)
        assert result.iterations == 3


class TestTreeBPCost:
    def test_processes_all_edges_per_round(self):
        g = make_tree_graph(seed=38)
        result = TreeBP().run(g)
        per_round = result.run_stats.per_iteration[0].edges_processed
        # collect + distribute each touch every directed edge once on a tree
        assert per_round == g.n_edges

    def test_slower_than_loopy_per_unit_work(self):
        """§2.1.1's premise: the level-scheduled sequential engine pays
        far more per edge than the vectorized loopy kernels."""
        import time

        from repro.core import LoopyBP

        g = make_loopy_graph(seed=39, n_nodes=300, n_edges=900)
        t0 = time.perf_counter()
        TreeBP(criterion=ConvergenceCriterion(max_iterations=3)).run(g.copy())
        tree_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        LoopyBP(criterion=ConvergenceCriterion(max_iterations=3), work_queue=False).run(g.copy())
        loopy_time = time.perf_counter() - t0
        assert tree_time > loopy_time

"""LoopyState compilation and message plumbing."""

import numpy as np
import pytest

from repro.core.graph import BeliefGraph
from repro.core.observation import observe
from repro.core.potentials import attractive_potential
from repro.core.state import LoopyState, normalize_rows
from tests.conftest import make_loopy_graph


class TestNormalizeRows:
    def test_basic(self):
        out = normalize_rows(np.array([[2.0, 2.0], [1.0, 3.0]], dtype=np.float32))
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-6)

    def test_zero_row_becomes_uniform(self):
        out = normalize_rows(np.array([[0.0, 0.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[0.5, 0.5]])


class TestLoopyState:
    def test_rejects_ragged(self):
        from repro.core.potentials import PerEdgePotentialStore

        g = BeliefGraph(
            [np.array([0.5, 0.5]), np.array([0.2, 0.3, 0.5])],
            np.array([0]),
            np.array([1]),
            PerEdgePotentialStore([np.full((2, 3), 1 / 3, dtype=np.float32)]),
        )
        with pytest.raises(ValueError, match="constant-width"):
            LoopyState(g)

    def test_initial_messages_uniform(self, loopy_graph):
        state = LoopyState(loopy_graph)
        np.testing.assert_allclose(state.messages, 1.0 / state.b)
        expected = np.log(1.0 / state.b) * np.diff(loopy_graph.in_offsets).reshape(-1, 1)
        np.testing.assert_allclose(
            state.log_msg_sum,
            np.broadcast_to(expected, state.log_msg_sum.shape),
            atol=1e-4,
        )

    def test_observed_priors_clamped_in_log_space(self):
        g = make_loopy_graph(seed=2)
        observe(g, 3, 1)
        state = LoopyState(g)
        assert state.log_priors[3, 1] == pytest.approx(0.0, abs=1e-6)
        assert state.log_priors[3, 0] < -30
        assert not state.free_mask[3]

    def test_store_messages_updates_log_sum_incrementally(self, loopy_graph):
        state = LoopyState(loopy_graph)
        edge_ids = np.arange(min(4, state.m))
        new = np.tile(np.array([0.9, 0.1], dtype=np.float32), (len(edge_ids), 1))
        state.store_messages(edge_ids, new)
        rebuilt = state.log_msg_sum.copy()
        state._rebuild_log_msg_sum()
        np.testing.assert_allclose(rebuilt, state.log_msg_sum, atol=1e-3)

    def test_store_messages_returns_l1_delta(self, loopy_graph):
        state = LoopyState(loopy_graph)
        edge_ids = np.array([0])
        new = np.array([[0.9, 0.1]], dtype=np.float32)
        deltas = state.store_messages(edge_ids, new)
        assert deltas[0] == pytest.approx(0.8, abs=1e-5)

    def test_combine_full_normalized(self, loopy_graph):
        state = LoopyState(loopy_graph)
        beliefs = state.combine_full()
        np.testing.assert_allclose(beliefs.sum(axis=1), 1.0, atol=1e-5)

    def test_gather_in_edges_matches_csr(self, loopy_graph):
        state = LoopyState(loopy_graph)
        nodes = np.array([0, 3, 5])
        gathered, offsets = state.gather_in_edges(nodes)
        for k, v in enumerate(nodes):
            seg = gathered[offsets[k] : offsets[k + 1]]
            np.testing.assert_array_equal(np.sort(seg), np.sort(loopy_graph.in_edges(int(v))))

    def test_gather_out_edges_matches_csr(self, loopy_graph):
        state = LoopyState(loopy_graph)
        nodes = np.array([1, 2])
        gathered = state.gather_out_edges(nodes)
        expected = np.concatenate([loopy_graph.out_edges(1), loopy_graph.out_edges(2)])
        np.testing.assert_array_equal(np.sort(gathered), np.sort(expected))

    def test_gather_empty_nodes(self, loopy_graph):
        state = LoopyState(loopy_graph)
        gathered, offsets = state.gather_in_edges(np.empty(0, dtype=np.int64))
        assert len(gathered) == 0 and len(offsets) == 1

    def test_propagate_vs_cavity_differ_with_informative_messages(self):
        g = make_loopy_graph(seed=3)
        state = LoopyState(g)
        # push non-uniform messages so the cavity division matters
        new = np.tile(np.array([0.8, 0.2], dtype=np.float32), (state.m, 1))
        state.store_messages(np.arange(state.m), new)
        state.beliefs = state.combine_full()
        broadcast = state.propagate_messages()
        cavity = state.cavity_messages()
        assert not np.allclose(broadcast, cavity, atol=1e-4)

    def test_max_semiring_messages(self, loopy_graph):
        state = LoopyState(loopy_graph)
        msgs = state.propagate_messages(semiring="max")
        np.testing.assert_allclose(msgs.sum(axis=1), 1.0, atol=1e-5)

    def test_unknown_semiring_raises(self, loopy_graph):
        state = LoopyState(loopy_graph)
        with pytest.raises(ValueError, match="semiring"):
            state.propagate_messages(semiring="min")

    def test_export_beliefs_writes_back(self, loopy_graph):
        state = LoopyState(loopy_graph)
        state.beliefs[0] = (0.9, 0.1)
        state.export_beliefs()
        np.testing.assert_allclose(loopy_graph.beliefs.get(0), [0.9, 0.1], atol=1e-6)

    def test_shared_vs_stacked_potentials_equivalent(self):
        g_shared = make_loopy_graph(seed=9)
        mats = np.broadcast_to(
            g_shared.potentials.matrix(0), (g_shared.n_edges, 2, 2)
        ).copy()
        from repro.core.potentials import PerEdgePotentialStore

        g_stacked = g_shared.copy()
        g_stacked.potentials = PerEdgePotentialStore(mats)
        s1, s2 = LoopyState(g_shared), LoopyState(g_stacked)
        np.testing.assert_allclose(
            s1.propagate_messages(), s2.propagate_messages(), atol=1e-6
        )

"""Runtime-jitter relabeling (the §4.4 near-tie mechanism)."""

import numpy as np
import pytest

from repro.credo.training import TrainingRow, relabel_with_jitter


def _row(times, label="node"):
    return TrainingRow("x", "binary", 2, np.zeros(5), label, dict(times), "c-edge", 1.0)


class TestJitter:
    def test_zero_scale_is_identity(self):
        rows = [_row({"c-node": 1.0, "c-edge": 2.0})]
        out = relabel_with_jitter(rows, 0.0)
        assert out[0].label == "node"
        assert out[0].times == rows[0].times

    def test_wide_margins_survive_noise(self):
        rows = [_row({"c-node": 1.0, "c-edge": 100.0})]
        for seed in range(20):
            assert relabel_with_jitter(rows, 0.15, seed=seed)[0].label == "node"

    def test_near_ties_flip_sometimes(self):
        rows = [_row({"c-node": 1.0, "c-edge": 1.02})]
        labels = {relabel_with_jitter(rows, 0.15, seed=s)[0].label for s in range(30)}
        assert labels == {"node", "edge"}

    def test_deterministic_given_seed(self):
        rows = [_row({"c-node": 1.0, "c-edge": 1.01}) for _ in range(10)]
        a = [r.label for r in relabel_with_jitter(rows, 0.2, seed=3)]
        b = [r.label for r in relabel_with_jitter(rows, 0.2, seed=3)]
        assert a == b

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            relabel_with_jitter([], -0.1)

"""Simulated distributed-memory backend (paper §5.1 comparison)."""

import numpy as np
import pytest

from repro.backends.c_backends import CEdgeBackend
from repro.backends.distributed import (
    ETHERNET_1G,
    INFINIBAND,
    ClusterSpec,
    DistributedBackend,
)
from repro.core import exact_marginals
from tests.conftest import make_loopy_graph, make_tree_graph


class TestDistributedBackend:
    def test_exact_on_trees(self):
        g = make_tree_graph(seed=91, n_nodes=8)
        expected = exact_marginals(g)
        result = DistributedBackend().run(g)
        np.testing.assert_allclose(result.beliefs, expected, atol=5e-3)

    def test_result_contract(self):
        g = make_loopy_graph(seed=92)
        result = DistributedBackend().run(g)
        assert result.backend == "distributed"
        assert result.modeled_time > 0
        assert result.detail["ranks"] == 40

    def test_latency_dominates_on_slow_networks(self):
        """§5.1: 'due to network latencies from the frequent message
        passing inherent to BP, their solution takes hours' — the
        commodity cluster must be far slower than the HPC fabric."""
        g = make_loopy_graph(seed=93, n_nodes=200, n_edges=600)
        slow = DistributedBackend(ETHERNET_1G).run(g.copy()).modeled_time
        fast = DistributedBackend(INFINIBAND).run(g.copy()).modeled_time
        assert slow > 3 * fast

    def test_single_machine_beats_cluster_on_small_graphs(self):
        """The paper's framing: Credo on one machine processes graphs the
        distributed systems need orders of magnitude longer for."""
        g = make_loopy_graph(seed=94, n_nodes=300, n_edges=900)
        local = CEdgeBackend().run(g.copy()).modeled_time
        cluster = DistributedBackend(ETHERNET_1G).run(g.copy()).modeled_time
        assert cluster > 5 * local

    def test_better_partitioning_helps(self):
        g = make_loopy_graph(seed=95, n_nodes=300, n_edges=900)
        random_part = DistributedBackend(ETHERNET_1G).run(g.copy()).modeled_time
        good_part = DistributedBackend(
            ETHERNET_1G, edge_cut_fraction=0.05
        ).run(g.copy()).modeled_time
        assert good_part < random_part

    def test_cluster_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec("bad", ranks=0, latency=1e-6, bandwidth=1e9)
        with pytest.raises(ValueError):
            ClusterSpec("bad", ranks=4, latency=1e-6, bandwidth=0.0)

    def test_cut_fraction_default_is_random_hash(self):
        be = DistributedBackend(ClusterSpec("c", ranks=8, latency=1e-6, bandwidth=1e9))
        assert be._cut_fraction() == pytest.approx(1.0 - 1.0 / 8)

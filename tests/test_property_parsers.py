"""Property-based round-trip fuzzing of the BIF / XML-BIF parsers."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.bif import parse_bif, write_bif
from repro.io.network import BayesianNetwork, Cpt, Variable
from repro.io.xmlbif import parse_xmlbif, write_xmlbif

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_name = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)


@st.composite
def networks(draw):
    """Random single/multi-parent Bayesian networks with 2-4-state
    variables and strictly positive CPTs."""
    n = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    names = [f"v{i}_{draw(_name)}"[:12] for i in range(n)]
    net = BayesianNetwork(name=draw(_name))
    arities = []
    for name in names:
        arity = int(rng.integers(2, 5))
        arities.append(arity)
        net.add_variable(Variable(name, [f"s{k}" for k in range(arity)]))
    for i, name in enumerate(names):
        max_parents = min(i, 2)
        k = int(rng.integers(0, max_parents + 1))
        parents = list(rng.choice(i, size=k, replace=False)) if k else []
        parent_names = [names[int(p)] for p in parents]
        shape = tuple(arities[int(p)] for p in parents) + (arities[i],)
        table = rng.dirichlet(np.ones(arities[i]) * 2, size=shape[:-1])
        table = np.maximum(table, 1e-4)
        table = table / table.sum(axis=-1, keepdims=True)
        net.add_cpt(Cpt(name, parent_names, table.reshape(shape)))
    return net


def _assert_equal(a: BayesianNetwork, b: BayesianNetwork, atol: float) -> None:
    assert list(a.variables) == list(b.variables)
    for name, var in a.variables.items():
        assert var.states == b.variables[name].states
    for name, cpt in a.cpts.items():
        assert cpt.parents == b.cpts[name].parents
        np.testing.assert_allclose(cpt.table, b.cpts[name].table, atol=atol)


class TestParserRoundtrips:
    @given(networks())
    @settings(**SETTINGS)
    def test_bif_roundtrip(self, net):
        _assert_equal(net, parse_bif(write_bif(net)), atol=1e-4)

    @given(networks())
    @settings(**SETTINGS)
    def test_xmlbif_roundtrip(self, net):
        _assert_equal(net, parse_xmlbif(write_xmlbif(net)), atol=1e-4)

    @given(networks())
    @settings(**SETTINGS)
    def test_cross_format_agreement(self, net):
        """BIF -> network -> XML-BIF -> network keeps the semantics."""
        via_bif = parse_bif(write_bif(net))
        via_xml = parse_xmlbif(write_xmlbif(via_bif))
        _assert_equal(net, via_xml, atol=2e-4)

    @given(networks())
    @settings(**SETTINGS)
    def test_projection_runs_on_fuzzed_networks(self, net):
        """Every generated network converts to a belief graph the
        reference engine can process to normalized posteriors."""
        from repro.backends.reference import ReferenceBackend
        from repro.core.convergence import ConvergenceCriterion
        from repro.io.network import network_to_belief_graph

        graph = network_to_belief_graph(net)
        result = ReferenceBackend().run(
            graph, criterion=ConvergenceCriterion(max_iterations=30)
        )
        for i in range(graph.n_nodes):
            total = float(np.asarray(graph.beliefs.get(i)).sum())
            assert abs(total - 1.0) < 1e-3

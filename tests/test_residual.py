"""Residual-priority scheduling (extension; Gonzalez et al. line).

Runs through the unified driver — ``LoopyBP(schedule="residual")`` —
with a couple of checks on the legacy ``ResidualBP`` alias.
"""

import numpy as np
import pytest

from repro.core import LoopyBP, LoopyResult, exact_marginals
from repro.core.convergence import ConvergenceCriterion
from repro.core.scheduler import ResidualBP
from tests.conftest import make_loopy_graph, make_tree_graph


def residual_bp(**kwargs) -> LoopyBP:
    return LoopyBP(paradigm="edge", schedule="residual", **kwargs)


class TestResidualSchedule:
    def test_exact_on_trees(self):
        g = make_tree_graph(seed=71, n_nodes=8)
        expected = exact_marginals(g)
        result = residual_bp().run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-3)

    def test_agrees_with_synchronous_loopy(self):
        g = make_loopy_graph(seed=72, n_nodes=25, n_edges=50)
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=400)
        sync = LoopyBP(schedule="sync", criterion=crit).run(g.copy())
        resid = residual_bp(criterion=crit).run(g.copy())
        np.testing.assert_allclose(resid.beliefs, sync.beliefs, atol=5e-3)

    def test_fewer_updates_than_full_sweeps(self):
        """The point of priority scheduling: focus work on the frontier."""
        g = make_loopy_graph(seed=73, n_nodes=60, n_edges=120)
        crit = ConvergenceCriterion(threshold=1e-4, max_iterations=400)
        sync = LoopyBP(schedule="sync", criterion=crit).run(g.copy())
        resid = residual_bp(criterion=crit).run(g.copy())
        assert resid.converged
        assert resid.updates < sync.iterations * g.n_edges

    def test_respects_update_cap(self):
        g = make_loopy_graph(seed=74, coupling=0.95)
        crit = ConvergenceCriterion(threshold=1e-12, max_iterations=2)
        result = residual_bp(criterion=crit).run(g)
        assert result.updates <= 2 * g.n_edges

    def test_edgeless_graph(self):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        g = BeliefGraph.from_undirected(
            np.array([[0.3, 0.7]]), np.empty((0, 2), dtype=np.int64),
            attractive_potential(2, 0.8),
        )
        result = residual_bp().run(g)
        assert result.converged and result.updates == 0

    def test_observed_nodes_stay_clamped(self):
        from repro.core.observation import observe

        g = make_loopy_graph(seed=75)
        observe(g, 2, 1)
        result = residual_bp().run(g)
        np.testing.assert_allclose(result.beliefs[2], [0.0, 1.0], atol=1e-6)

    def test_damping_still_converges(self):
        g = make_loopy_graph(seed=76)
        result = residual_bp(damping=0.3).run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)


class TestResidualBPAlias:
    """The legacy entry point is a thin alias over the unified driver."""

    def test_returns_loopy_result(self):
        g = make_loopy_graph(seed=77)
        result = ResidualBP().run(g)
        assert isinstance(result, LoopyResult)
        assert result.config.schedule == "residual"
        assert result.config.paradigm == "edge"

    def test_matches_unified_driver(self):
        crit = ConvergenceCriterion(threshold=1e-5, max_iterations=400)
        via_alias = ResidualBP(criterion=crit).run(make_loopy_graph(seed=78))
        via_loopy = residual_bp(criterion=crit).run(make_loopy_graph(seed=78))
        np.testing.assert_array_equal(via_alias.beliefs, via_loopy.beliefs)
        assert via_alias.updates == via_loopy.updates

    def test_residual_module_is_gone(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.residual", None)
        with pytest.raises(ImportError):
            importlib.import_module("repro.core.residual")

"""Residual-priority scheduling (extension; Gonzalez et al. line)."""

import numpy as np
import pytest

from repro.core import LoopyBP, exact_marginals
from repro.core.convergence import ConvergenceCriterion
from repro.core.residual import ResidualBP
from tests.conftest import make_loopy_graph, make_tree_graph


class TestResidualBP:
    def test_exact_on_trees(self):
        g = make_tree_graph(seed=71, n_nodes=8)
        expected = exact_marginals(g)
        result = ResidualBP().run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs, expected, atol=1e-3)

    def test_agrees_with_synchronous_loopy(self):
        g = make_loopy_graph(seed=72, n_nodes=25, n_edges=50)
        crit = ConvergenceCriterion(threshold=1e-6, max_iterations=400)
        sync = LoopyBP(work_queue=False, criterion=crit).run(g.copy())
        resid = ResidualBP(criterion=crit).run(g.copy())
        np.testing.assert_allclose(resid.beliefs, sync.beliefs, atol=5e-3)

    def test_fewer_updates_than_full_sweeps(self):
        """The point of priority scheduling: focus work on the frontier."""
        g = make_loopy_graph(seed=73, n_nodes=60, n_edges=120)
        crit = ConvergenceCriterion(threshold=1e-4, max_iterations=400)
        sync = LoopyBP(work_queue=False, criterion=crit).run(g.copy())
        resid = ResidualBP(criterion=crit).run(g.copy())
        assert resid.converged
        assert resid.updates < sync.iterations * g.n_edges

    def test_respects_update_cap(self):
        g = make_loopy_graph(seed=74, coupling=0.95)
        crit = ConvergenceCriterion(threshold=1e-12, max_iterations=2)
        result = ResidualBP(criterion=crit).run(g)
        assert result.updates <= 2 * g.n_edges

    def test_edgeless_graph(self):
        from repro.core.graph import BeliefGraph
        from repro.core.potentials import attractive_potential

        g = BeliefGraph.from_undirected(
            np.array([[0.3, 0.7]]), np.empty((0, 2), dtype=np.int64),
            attractive_potential(2, 0.8),
        )
        result = ResidualBP().run(g)
        assert result.converged and result.updates == 0

    def test_observed_nodes_stay_clamped(self):
        from repro.core.observation import observe

        g = make_loopy_graph(seed=75)
        observe(g, 2, 1)
        result = ResidualBP().run(g)
        np.testing.assert_allclose(result.beliefs[2], [0.0, 1.0], atol=1e-6)

    def test_damping_still_converges(self):
        g = make_loopy_graph(seed=76)
        result = ResidualBP(damping=0.3).run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)

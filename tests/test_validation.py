"""Failure-injection tests: malformed inputs must fail loudly."""

import numpy as np
import pytest

from repro.core.graph import BeliefGraph
from repro.core.potentials import SharedPotentialStore, attractive_potential


class TestGraphValidation:
    def test_nan_priors_rejected(self):
        priors = np.array([[0.5, 0.5], [np.nan, 0.5]])
        with pytest.raises(ValueError, match="NaN"):
            BeliefGraph.from_undirected(
                priors, np.array([[0, 1]]), attractive_potential(2, 0.8)
            )

    def test_infinite_priors_rejected(self):
        priors = np.array([[0.5, 0.5], [np.inf, 0.5]])
        with pytest.raises(ValueError, match="NaN or infinite"):
            BeliefGraph.from_undirected(
                priors, np.array([[0, 1]]), attractive_potential(2, 0.8)
            )

    def test_negative_priors_rejected(self):
        priors = np.array([[0.5, 0.5], [-0.1, 1.1]])
        with pytest.raises(ValueError, match="non-negative"):
            BeliefGraph.from_undirected(
                priors, np.array([[0, 1]]), attractive_potential(2, 0.8)
            )

    def test_all_zero_prior_row_becomes_uniform(self):
        priors = np.array([[0.0, 0.0], [0.3, 0.7]])
        g = BeliefGraph.from_undirected(
            priors, np.array([[0, 1]]), attractive_potential(2, 0.8)
        )
        np.testing.assert_allclose(g.priors.get(0), [0.5, 0.5])

    def test_mismatched_src_dst(self):
        with pytest.raises(ValueError, match="equal length"):
            BeliefGraph(
                np.full((2, 2), 0.5), np.array([0, 1]), np.array([1]),
                attractive_potential(2, 0.8),
            )

    def test_potential_store_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            BeliefGraph(
                np.full((2, 2), 0.5), np.array([0]), np.array([1]),
                SharedPotentialStore(attractive_potential(2, 0.8), 5),
            )

    def test_node_names_length_mismatch(self):
        with pytest.raises(ValueError, match="node_names"):
            BeliefGraph.from_undirected(
                np.full((2, 2), 0.5), np.array([[0, 1]]),
                attractive_potential(2, 0.8), node_names=["only-one"],
            )


class TestSuiteIteration:
    def test_suite_graphs_yields_all_variants(self):
        from repro.graphs.suite import suite_graphs

        seen = list(
            suite_graphs(
                use_cases=("binary",),
                subset=("10x40", "100x400"),
                profile="smoke",
            )
        )
        assert len(seen) == 2
        for bench, use_case, graph, factor in seen:
            assert use_case == "binary"
            assert graph.n_nodes > 0
            assert factor == 1.0


class TestBeliefStoreEdgeCases:
    def test_empty_store(self):
        from repro.core.beliefs import make_store

        store = make_store(np.array([], dtype=np.int64), "aos")
        assert len(store) == 0
        assert store.dense().shape[0] == 0

    def test_single_state_node(self):
        from repro.core.beliefs import make_store

        store = make_store(np.array([1, 2]), "soa")
        store.fill_uniform()
        np.testing.assert_allclose(store.get(0), [1.0])

"""The Credo system: features, rules, selector, training, runner (§3.7)."""

import numpy as np
import pytest

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential
from repro.credo import (
    FEATURE_NAMES,
    Credo,
    CredoSelector,
    build_training_set,
    extract_features,
    rule_select,
)
from repro.credo.selector import cuda_pivot_nodes
from repro.credo.training import TrainingRow, fits_vram_paper_scale
from repro.graphs import build_graph, synthetic_graph
from tests.conftest import make_loopy_graph


class TestFeatures:
    def test_five_features(self):
        g = make_loopy_graph(seed=61)
        feats = extract_features(g)
        assert feats.shape == (len(FEATURE_NAMES),) == (5,)

    def test_feature_values_on_known_graph(self):
        # star: 0 -> 1..4, canonical orientation preserved
        priors = np.full((5, 2), 0.5)
        g = BeliefGraph.from_undirected(
            priors, np.array([[0, 1], [0, 2], [0, 3], [0, 4]]),
            attractive_potential(2, 0.8),
        )
        n_nodes, ratio, beliefs, imbalance, skew = extract_features(g)
        assert n_nodes == 5
        assert ratio == pytest.approx(5 / 4)
        assert beliefs == 2
        # canonical in-degrees: [0,1,1,1,1]; out-degrees: [4,0,0,0,0]
        assert imbalance == pytest.approx(1 / 4)
        assert skew == pytest.approx((4 / 5) / 1)

    def test_ratios_bounded(self):
        """§4.3: 'the majority of the features [are] ratios between zero
        and one' — skew always is; imbalance is for this star family."""
        g = synthetic_graph(500, 2000, seed=1)
        feats = extract_features(g)
        assert 0.0 < feats[4] <= 1.0  # skew


class TestRules:
    def test_extremes(self):
        small = synthetic_graph(100, 400, seed=2)
        large = synthetic_graph(100_000, 200_000, seed=3)
        assert rule_select(small) == "c-edge"
        assert rule_select(large) == "cuda-node"

    def test_middle_ground_deferred(self):
        mid = synthetic_graph(10_000, 40_000, seed=4)
        assert rule_select(mid) is None

    def test_pivot_monotone_in_beliefs(self):
        """§3.6: 100 k at 2 beliefs down to 1 k at 32 beliefs."""
        assert cuda_pivot_nodes(2) == pytest.approx(100_000)
        assert cuda_pivot_nodes(32) == pytest.approx(1_000)
        assert cuda_pivot_nodes(3) < cuda_pivot_nodes(2)
        assert cuda_pivot_nodes(8) > cuda_pivot_nodes(32)


class TestVramFeasibility:
    def test_paper_exclusions(self):
        """§4.2: TW and OR exceed the GTX 1070's VRAM at 32 beliefs."""
        from repro.graphs.suite import SUITE

        assert not fits_vram_paper_scale(SUITE["TW"], 32, "gtx1070")
        assert not fits_vram_paper_scale(SUITE["OR"], 32, "gtx1070")
        assert fits_vram_paper_scale(SUITE["2Mx8M"], 2, "gtx1070")

    def test_vram_exclusion_count_near_paper(self):
        """§4.3: 95 of 132 variants fit; with 34 graphs x 3 use cases we
        expect a comparable exclusion pattern (only huge 32-belief and
        mega-edge graphs drop)."""
        from repro.graphs.suite import SUITE
        from repro.usecases import USE_CASES

        fitting = sum(
            fits_vram_paper_scale(bench, b, "gtx1070")
            for bench in SUITE.values()
            for b in USE_CASES.values()
        )
        total = len(SUITE) * len(USE_CASES)
        assert total == 102
        assert 0.6 * total <= fitting < total


class TestSelector:
    def _rows(self):
        rng = np.random.default_rng(0)
        rows = []
        for i in range(40):
            n = float(10 ** rng.uniform(2, 6))
            label = "node" if n > 50_000 else "edge"
            feats = np.array([n, rng.uniform(0.1, 1), 2.0, rng.uniform(0, 1), rng.uniform(0, 1)])
            rows.append(
                TrainingRow("syn", "binary", 2, feats, label, {}, "c-edge", 1.0)
            )
        return rows

    def test_fit_and_predict(self):
        selector = CredoSelector().fit(self._rows())
        small = synthetic_graph(100, 400, seed=5)
        assert selector.select(small) == "c-edge"
        large = synthetic_graph(150_000, 300_000, seed=6)
        assert selector.select(large).startswith("cuda-")

    def test_unfitted_fallback(self):
        selector = CredoSelector()
        mid = synthetic_graph(5_000, 20_000, seed=7)
        assert selector.select(mid) in {"c-node", "c-edge", "cuda-node", "cuda-edge"}

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            CredoSelector().fit([])


class TestTraining:
    def test_build_training_set_small_subset(self):
        rows = build_training_set(
            "gtx1070",
            subset=("10x40", "100x400"),
            use_cases=("binary",),
            profile="smoke",
        )
        assert len(rows) == 2
        for row in rows:
            assert row.label in ("node", "edge")
            assert set(row.times) == {"c-node", "c-edge", "cuda-node", "cuda-edge"}
            assert row.best_backend in row.times


class TestRunner:
    def test_run_with_explicit_backend(self):
        credo = Credo()
        g, _ = build_graph("100x400", "binary", profile="smoke")
        result = credo.run(g, backend="c-node")
        assert result.backend == "c-node"
        assert result.detail["selected"] == "c-node"

    def test_run_selects_automatically(self):
        credo = Credo()
        g, _ = build_graph("100x400", "binary", profile="smoke")
        result = credo.run(g)
        assert result.backend == "c-edge"  # rule: tiny graph

    def test_unknown_backend_rejected(self):
        credo = Credo()
        g, _ = build_graph("10x40", "binary", profile="smoke")
        with pytest.raises(KeyError, match="unknown backend"):
            credo.run(g, backend="asic-node")

    def test_run_file(self, tmp_path):
        from repro.io.mtx import write_mtx_graph

        g = make_loopy_graph(seed=62, n_nodes=30, n_edges=50)
        write_mtx_graph(g, tmp_path / "g.nodes", tmp_path / "g.edges")
        result = Credo().run_file(tmp_path / "g.nodes", tmp_path / "g.edges")
        assert result.converged


class TestCli:
    def test_backends_command(self, capsys):
        from repro.credo.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "cuda-node" in out and "c-edge" in out

    def test_features_command(self, tmp_path, capsys):
        from repro.credo.cli import main
        from repro.io.mtx import write_mtx_graph

        g = make_loopy_graph(seed=63, n_nodes=12, n_edges=20)
        write_mtx_graph(g, tmp_path / "g.nodes", tmp_path / "g.edges")
        assert main(["features", str(tmp_path / "g.nodes"), str(tmp_path / "g.edges")]) == 0
        assert "n_beliefs" in capsys.readouterr().out

    def test_run_command(self, tmp_path, capsys):
        from repro.credo.cli import main
        from repro.io.mtx import write_mtx_graph

        g = make_loopy_graph(seed=64, n_nodes=12, n_edges=20)
        write_mtx_graph(g, tmp_path / "g.nodes", tmp_path / "g.edges")
        code = main(
            ["run", str(tmp_path / "g.nodes"), str(tmp_path / "g.edges"), "--backend", "c-edge", "--top", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend       c-edge" in out
        assert "node 0:" in out


class TestCliConvert:
    def test_convert_bif_to_mtx(self, tmp_path, capsys, family_out_bif):
        from repro.credo.cli import main
        from repro.io.mtx import read_mtx_graph

        bif = tmp_path / "net.bif"
        bif.write_text(family_out_bif)
        prefix = str(tmp_path / "net")
        assert main(["convert", str(bif), prefix]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        g = read_mtx_graph(prefix + ".nodes", prefix + ".edges")
        assert g.n_nodes == 5

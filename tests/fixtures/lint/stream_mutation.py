"""RPR306 fixture: direct mutation of a registered model's frozen graph."""


def bad_structure_write(model):
    model.graph.src[0] = 3  # FINDING: frozen structure array


def bad_prior_swap(model, new_priors):
    model.graph.priors = new_priors  # FINDING: rebinding a frozen store


def bad_augmented(model):
    model.graph.observed_state[2] += 1  # FINDING: frozen evidence array


def bad_chained_lookup(registry):
    registry.get("m").graph.beliefs[0] = 0.5  # FINDING: chained through a call


def bad_self_graph(self, rev):
    self.graph.reverse_edge = rev  # FINDING: frozen structure array


def bad_observe_master(observe, model):
    observe(model.graph, 3, 1)  # FINDING: evidence on the master


def bad_clear_master(clear_observations, server):
    clear_observations(server.registry.get("m").graph)  # FINDING: evidence on the master


def good_bare_graph(graph):
    # a bare local graph is the caller's own copy, not a registered master
    graph.observed[3] = True
    graph.src[0] = 1


def good_delta(model, delta, apply_delta):
    return apply_delta(model.graph, delta)


def good_read(model):
    return model.graph.src[0], model.graph.priors.dense()


def good_observe_view(observe, view):
    observe(view, 3, 1)


def good_unrelated_attr(model):
    model.graph_cache = {}
    model.plan = None

"""Planted RPR403 write-after-read hazards: out= clobbers a live alias."""

import numpy as np


def clobbered_alias(state):
    old = state.beliefs
    np.exp(state.log_priors, out=state.beliefs)  # FINDING
    # `old` still aliases the belief buffer, so this reads exp()d rows.
    return old.sum()


def loop_carried_alias(state):
    captured = state.log_msg_sum
    acc = 0.0
    for _ in range(3):
        acc = acc + captured.sum()
        np.add(state.log_priors, state.log_priors, out=state.log_msg_sum)  # FINDING
    return acc


def inplace_pipeline_ok(state):
    # Same-statement read plus chained in-place ops through one name:
    # well-defined ufunc semantics, and the alias is never read stale.
    new = state.beliefs + 1.0
    old = state.beliefs
    np.subtract(new, old, out=old)
    np.abs(old, out=old)
    deltas = old.sum(axis=1)
    state.beliefs[:] = new
    return deltas


def rebound_before_read_ok(state):
    old = state.beliefs
    np.exp(state.log_priors, out=state.beliefs)
    old = state.log_priors
    return old.sum()


def copy_before_write_ok(state):
    old = state.beliefs.copy()
    np.exp(state.log_priors, out=state.beliefs)
    return old.sum()

"""RPR302 fixture: backend/schedule qualifier literals vs the registries."""

from repro.backends.registry import get_backend


def bad_typo_backend():
    return get_backend("c-nod:residual")  # FINDING: unknown backend


def bad_schedule_qualifier():
    return get_backend("c-node:bogus")  # FINDING: unknown schedule


def bad_partitioner(run):
    return run(backend="c-node:residual@4xmetis")  # FINDING: no such method


def bad_schedule_kwarg(credo):
    return credo.run(schedule="residualish")  # FINDING


def good_plain():
    return get_backend("c-node")


def good_qualified(run):
    return run(backend="cuda-edge:residual@4xbfs")


def good_schedule(credo):
    return credo.run(schedule="work_queue")


def good_dynamic(name):
    return get_backend(name)  # ok: not a literal, can't check statically

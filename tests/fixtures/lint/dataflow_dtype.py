"""Planted RPR402 dtype drift: float64 silently downcast into float32."""

import numpy as np


def out_downcast(state):
    # np.zeros defaults to float64, so the add produces float64 and the
    # out= narrows it back into the float32 belief buffer.
    bias = np.zeros((state.n, state.b))
    np.add(state.beliefs, bias, out=state.beliefs)  # FINDING
    return state.beliefs


def store_downcast(state, deltas):
    # bincount with weights returns float64; the column store narrows.
    state.log_msg_sum[:, 0] = np.bincount(state.dst, weights=state.messages[:, 0], minlength=state.n)  # FINDING
    return state.log_msg_sum


def augmented_downcast(state):
    extra = np.ones((state.n, state.b))
    state.log_msg_sum += extra  # FINDING
    return state.log_msg_sum


def explicit_cast_ok(state):
    counts = np.bincount(state.dst, weights=state.messages[:, 0], minlength=state.n)
    state.log_msg_sum[:, 0] = counts.astype(np.float32)
    return state.log_msg_sum


def float32_math_ok(state):
    bias = np.zeros((state.n, state.b), dtype=np.float32)
    np.add(state.beliefs, bias, out=state.beliefs)
    return state.beliefs

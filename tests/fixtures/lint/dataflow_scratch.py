"""Planted RPR404 scratch-buffer escapes from an executor-style class."""

import numpy as np


class MiniExecutor:
    """Lowers once, reuses `_scratch` across sweeps (like CompiledExecutor)."""

    def __init__(self, state):
        self._scratch = np.empty((state.m, state.b), dtype=np.float32)
        self._deltas = np.empty((state.m,), dtype=np.float32)

    def _fill(self, state):
        np.multiply(state.messages, 2.0, out=self._scratch)
        return self._scratch  # private helper: allowed

    def edge_view(self, state):
        raw = self._fill(state)
        return raw  # FINDING

    def publish(self, state):
        state.stash = self._scratch  # FINDING
        return None

    def edge_copy(self, state):
        raw = self._fill(state)
        return raw.copy()

    def deltas(self, state):
        np.subtract(self._scratch[:, 0], state.messages[:, 0], out=self._deltas)
        total = float(self._deltas.sum())
        return total

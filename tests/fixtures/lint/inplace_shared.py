"""RPR103 fixture: in-place mutation of shared / cached objects."""

import numpy as np


def bad_structure_write(graph):
    graph.src[0] = 3  # FINDING: structure arrays shared across .copy()


def bad_structure_augment(graph):
    graph.in_offsets += 1  # FINDING


def bad_cached_mutation(result_cache, key):
    posteriors = result_cache.get(key)
    posteriors[0] = 0.5  # FINDING: cache entry mutated in place
    return posteriors


def good_rebuild(graph, new_src):
    graph.src = np.asarray(new_src)  # ok: rebinding, not in-place


def good_copy(result_cache, key):
    posteriors = result_cache.get(key)
    mine = np.array(posteriors, copy=True)
    mine[0] = 0.5  # ok: the copy is private
    return mine


class Builder:
    def __init__(self, n):
        self.src = np.zeros(n, dtype=np.int64)
        self.src[0] = 1  # ok: constructor filling its own allocation

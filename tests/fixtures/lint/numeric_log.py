"""RPR101 fixture: unguarded vs guarded logs on probability data."""

import numpy as np

from repro.core.numeric import TINY, safe_log


def bad_log(messages):
    return np.log(messages)  # FINDING: no clamp


def bad_log_expr(beliefs):
    return np.log(beliefs * 2.0)  # FINDING: multiply doesn't guard zero


def good_clamped(messages):
    clamped = np.maximum(messages, TINY)
    return np.log(clamped)  # ok: dataflow sees the clamp


def good_inline(messages):
    return np.log(np.maximum(messages, TINY))  # ok: guarded argument


def good_safe(messages):
    return safe_log(messages)  # ok: project helper clamps internally


def good_additive(messages):
    return np.log(messages + 1e-30)  # ok: "+ eps" guard


def suppressed_log(messages):
    return np.log(messages)  # noqa: RPR101

"""RPR304 fixture: shard-policy / staleness literals vs the live registry."""


def bad_policy(run):
    return run(shards=4, policy="asink")  # FINDING: unknown policy


def bad_server_policy(config):
    return config(shard_policy="lockstep-ish")  # FINDING: unknown policy


def bad_sync_staleness(run):
    return run(policy="sync", staleness=2)  # FINDING: sync is staleness-free


def bad_alias_staleness(run):
    return run(policy="bsp", staleness=1)  # FINDING: bsp aliases sync


def bad_negative_staleness(run):
    return run(policy="async", staleness=-2)  # FINDING: negative staleness


def bad_policy_wins(run):
    return run(policy="sink", staleness=3)  # FINDING: only the policy flagged


def good_async(run):
    return run(policy="async", staleness=2)


def good_alias(run):
    return run(shard_policy="ssp", staleness=1)


def good_sync(run):
    return run(policy="sync", staleness=0)


def good_dynamic(run, name):
    return run(policy=name)  # ok: not a literal, can't check statically

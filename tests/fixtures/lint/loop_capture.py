"""RPR202 fixture: loop variables captured by worker submissions."""


def bad_submit(pool, shards):
    futures = []
    for i, shard in enumerate(shards):
        futures.append(pool.submit(lambda: shard.sweep(i)))  # FINDING
    return futures


def bad_apply_async(pool, items):
    for item in items:
        pool.apply_async(lambda: item.process())  # FINDING


def good_bound_default(pool, shards):
    futures = []
    for i, shard in enumerate(shards):
        # ok: loop variables frozen as defaults at submission time
        futures.append(pool.submit(lambda i=i, shard=shard: shard.sweep(i)))
    return futures


def good_direct_args(pool, shards):
    return [pool.submit(shard.sweep, i) for i, shard in enumerate(shards)]


def good_map(pool, shards):
    return list(pool.map(lambda s: s.sweep(), shards))  # ok: map passes args

"""RPR303 fixture: LoopyConfig keyword validation against live fields."""

from repro.core.loopy import LoopyConfig


def bad_typo():
    return LoopyConfig(paradgim="node")  # FINDING: misspelled field


def bad_unknown():
    return LoopyConfig(n_shards=4)  # FINDING: sharding isn't a config field


def bad_deprecated():
    return LoopyConfig(work_queue=True)  # FINDING: deprecated boolean shim


def good_fields():
    return LoopyConfig(paradigm="node", schedule="residual", damping=0.1)


def good_suppressed():
    return LoopyConfig(work_queue=False)  # noqa: RPR303


def good_splat(kwargs):
    return LoopyConfig(**kwargs)  # ok: can't check statically

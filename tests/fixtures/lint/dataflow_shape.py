"""Planted RPR401 shape/axis mismatches for the whole-program pass."""

import numpy as np


def node_edge_mixup(state):
    # beliefs is (n_nodes, b) but messages is (n_edges, b): the add
    # aligns two distinct project dimensions.
    return state.beliefs + state.messages  # FINDING


def gather_from_wrong_table(state):
    # src holds *node* ids; messages is indexed by *edge* id.
    return state.messages[state.src]  # FINDING


def take_from_wrong_table(state):
    return np.take(state.beliefs, state.in_edge_ids)  # FINDING


def scatter_to_wrong_length(state, weights):
    # dst holds node ids but the accumulator is edge-length.
    return np.bincount(state.dst, weights=weights, minlength=state.m)  # FINDING


def weights_span_wrong_axis(state):
    col = state.beliefs[:, 0]
    return np.bincount(state.dst, weights=col, minlength=state.n)  # FINDING


def gather_ok(state):
    # node ids into a node-indexed table: fine.
    source = state.beliefs[state.src]
    return source + state.messages


def scatter_ok(state):
    col = state.messages[:, 0]
    return np.bincount(state.dst, weights=col, minlength=state.n)

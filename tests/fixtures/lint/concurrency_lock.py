"""RPR201 fixture: lock-discipline violations on guarded attributes."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def record_hit(self):
        with self._lock:
            self._hits += 1

    def record_miss(self):
        with self._lock:
            self._misses += 1

    def bad_total(self):
        return self._hits + self._misses  # FINDING x2: reads without lock

    def bad_reset(self):
        self._hits = 0  # FINDING: write without lock
        with self._lock:
            self._misses = 0

    def good_total(self):
        with self._lock:
            return self._hits + self._misses

    def _drain(self):
        """Flush counters (caller holds lock)."""
        self._hits = 0  # ok: documented lock-held helper
        self._misses = 0


class Unlocked:
    """No lock attribute at all: nothing to guard, nothing flagged."""

    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1

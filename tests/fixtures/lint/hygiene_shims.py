"""RPR301 fixture: deprecation-shim imports and deprecated kwargs."""

import repro.core.residual  # FINDING: shim module
from repro.core.workqueue import WorkQueue  # FINDING: shim module
from repro.core.scheduler import ResidualBP  # ok: real home


def bad_backend_kwarg(graph, cut):
    from repro.backends.distributed import MultiGpuBackend

    return MultiGpuBackend(edge_cut_fraction=cut).run(graph)  # FINDING


def good_detail_key(detail, cut):
    # ok: plain dict call, not a *Backend constructor
    detail.update(edge_cut_fraction=cut)
    return detail


__all__ = ["WorkQueue", "ResidualBP", "repro"]

"""RPR102 fixture: divisions by probability data."""

import numpy as np

from repro.core.numeric import TINY, safe_divide


def bad_cavity(beliefs, messages, rev):
    return beliefs / messages[rev]  # FINDING: zeroed rows under evidence


def bad_normalize(msg):
    return msg / msg.sum()  # FINDING: reduction of a zeroed row


def bad_np_divide(beliefs, messages):
    return np.divide(beliefs, messages)  # FINDING


def good_clamped(beliefs, messages, rev):
    back = np.maximum(messages[rev], TINY)
    return beliefs / back  # ok: denominator clamped upstream


def good_safe(beliefs, messages):
    return safe_divide(beliefs, messages)  # ok


def good_count(messages):
    return 1.0 / len(messages)  # ok: len() is a count, not mass

"""RPR305 fixture: executor=/layout= literals vs the kernels registries."""

from repro.core.loopy import LoopyBP


def bad_executor():
    return LoopyBP(executor="jit")  # FINDING: unknown executor


def bad_layout(credo, g):
    return credo.run(g, layout="csr")  # FINDING: unknown layout


def bad_qualified_suffix(run):
    return run(backend="c-node:sync!vectorized")  # RPR302 territory, not 305


def good_canonical():
    return LoopyBP(executor="compiled")


def good_alias(credo, g):
    return credo.run(g, executor="fused", layout="struct-of-arrays")


def good_auto(credo, g):
    return credo.run(g, executor="auto", layout="auto")


def good_dynamic(credo, g, choice):
    return credo.run(g, executor=choice)  # ok: not a literal

"""The BIF lexer and parser (paper §3.2)."""

import numpy as np
import pytest

from repro.io.bif import BifSyntaxError, parse_bif, tokenize, write_bif
from repro.io.network import network_to_belief_graph


class TestLexer:
    def test_token_stream(self):
        tokens = list(tokenize("network foo { }"))
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "punct", "punct", "eof"]

    def test_numbers(self):
        tokens = list(tokenize("0.15, -2e-3, 7"))
        values = [t.value for t in tokens if t.kind == "number"]
        assert values == ["0.15", "-2e-3", "7"]

    def test_line_comments_skipped(self):
        tokens = list(tokenize("// comment\nnetwork x {}"))
        assert tokens[0].value == "network"

    def test_block_comments_skipped(self):
        tokens = list(tokenize("/* multi\nline */ variable"))
        assert tokens[0].value == "variable"

    def test_unterminated_block_comment(self):
        with pytest.raises(BifSyntaxError, match="unterminated"):
            list(tokenize("/* oops"))

    def test_string_literal(self):
        tokens = list(tokenize('property author = "jane doe" ;'))
        assert any(t.kind == "string" and t.value == "jane doe" for t in tokens)

    def test_unknown_character(self):
        with pytest.raises(BifSyntaxError, match="unexpected character"):
            list(tokenize("network @"))

    def test_positions_tracked(self):
        tokens = list(tokenize("network\nfoo"))
        assert tokens[1].line == 2


class TestParser:
    def test_family_out(self, family_out_bif):
        net = parse_bif(family_out_bif)
        assert net.name == "family_out"
        assert len(net.variables) == 5
        np.testing.assert_allclose(net.cpts["family_out"].table, [0.15, 0.85])
        assert net.cpts["dog_out"].parents == ["family_out", "bowel_problem"]
        assert net.cpts["dog_out"].table.shape == (2, 2, 2)
        np.testing.assert_allclose(net.cpts["dog_out"].table[0, 1], [0.9, 0.1])

    def test_table_entry_form(self):
        src = """
        network n {}
        variable a { type discrete [ 2 ] { t, f }; }
        variable b { type discrete [ 2 ] { t, f }; }
        probability ( a ) { table 0.5, 0.5; }
        probability ( b | a ) { table 0.1, 0.9, 0.8, 0.2; }
        """
        net = parse_bif(src)
        np.testing.assert_allclose(net.cpts["b"].table, [[0.1, 0.9], [0.8, 0.2]])

    def test_default_rows(self):
        src = """
        network n {}
        variable a { type discrete [ 2 ] { t, f }; }
        variable b { type discrete [ 2 ] { t, f }; }
        probability ( a ) { table 0.5, 0.5; }
        probability ( b | a ) {
          (t) 0.9, 0.1;
          default 0.5, 0.5;
        }
        """
        net = parse_bif(src)
        np.testing.assert_allclose(net.cpts["b"].table, [[0.9, 0.1], [0.5, 0.5]])

    def test_state_count_mismatch(self):
        with pytest.raises(BifSyntaxError, match="declares 3 states"):
            parse_bif("network n {} variable a { type discrete [ 3 ] { t, f }; }")

    def test_undeclared_parent(self):
        src = """
        network n {}
        variable a { type discrete [ 2 ] { t, f }; }
        probability ( a | ghost ) { table 0.5, 0.5, 0.5, 0.5; }
        """
        with pytest.raises(BifSyntaxError, match="undeclared parent"):
            parse_bif(src)

    def test_missing_cpt_entries(self):
        src = """
        network n {}
        variable a { type discrete [ 2 ] { t, f }; }
        variable b { type discrete [ 2 ] { t, f }; }
        probability ( a ) { table 0.5, 0.5; }
        probability ( b | a ) { (t) 0.9, 0.1; }
        """
        with pytest.raises(BifSyntaxError, match="undefined"):
            parse_bif(src)

    def test_missing_probability_block(self):
        src = """
        network n {}
        variable a { type discrete [ 2 ] { t, f }; }
        """
        with pytest.raises(ValueError, match="no probability block"):
            parse_bif(src)

    def test_cycle_detected(self):
        src = """
        network n {}
        variable a { type discrete [ 2 ] { t, f }; }
        variable b { type discrete [ 2 ] { t, f }; }
        probability ( a | b ) { table 0.5, 0.5, 0.5, 0.5; }
        probability ( b | a ) { table 0.5, 0.5, 0.5, 0.5; }
        """
        with pytest.raises(ValueError, match="cycle"):
            parse_bif(src)

    def test_syntax_error_position(self):
        try:
            parse_bif("network n {} variable { }")
        except BifSyntaxError as exc:
            assert exc.line == 1
        else:
            pytest.fail("expected BifSyntaxError")


class TestWriter:
    def test_roundtrip(self, family_out_bif):
        net = parse_bif(family_out_bif)
        net2 = parse_bif(write_bif(net))
        assert list(net.variables) == list(net2.variables)
        for name, cpt in net.cpts.items():
            np.testing.assert_allclose(cpt.table, net2.cpts[name].table, atol=1e-5)

    def test_file_output(self, family_out_bif, tmp_path):
        net = parse_bif(family_out_bif)
        path = tmp_path / "out.bif"
        write_bif(net, path)
        assert path.exists()
        parse_bif(path.read_text())


class TestConversion:
    def test_family_out_to_graph(self, family_out_bif):
        net = parse_bif(family_out_bif)
        g = network_to_belief_graph(net)
        assert g.n_nodes == 5
        # 4 parent-child relations -> 8 directed edges
        assert g.n_edges == 8
        assert g.node_names[0] == "family_out"

    def test_converted_graph_runs_bp(self, family_out_bif):
        from repro.backends.reference import ReferenceBackend

        net = parse_bif(family_out_bif)
        g = network_to_belief_graph(net)
        result = ReferenceBackend().run(g)
        assert result.converged
        np.testing.assert_allclose(result.beliefs.sum(axis=1), 1.0, atol=1e-4)

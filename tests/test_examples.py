"""The example scripts run end-to-end (integration smoke)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "family_out" in proc.stdout
        assert "max |BP - exact|" in proc.stdout
        # the canonical posterior: seeing the light on with no barking
        # leaves p(family out) in the tens of percent
        assert "selected backend: c-edge" in proc.stdout

    def test_rumor_spread_small(self):
        proc = _run("rumor_spread.py", "500", "2000")
        assert proc.returncode == 0, proc.stderr
        assert "selected backend" in proc.stdout
        assert "believe the rumor" in proc.stdout

    def test_virus_outbreak_small(self):
        proc = _run("virus_outbreak.py", "256")
        assert proc.returncode == 0, proc.stderr
        assert "patient zero" in proc.stdout
        assert "expected infections" in proc.stdout
        assert "atomic transactions" in proc.stdout

    def test_image_denoising_small(self):
        proc = _run("image_denoising.py", "12")
        assert proc.returncode == 0, proc.stderr
        assert "mean absolute error" in proc.stdout
        # BP must actually denoise: parse the error line
        line = [l for l in proc.stdout.splitlines() if "mean absolute error" in l][0]
        parts = line.split("|")
        noisy = float(parts[0].split()[-1])
        restored = float(parts[1].split()[-1])
        assert restored < noisy

    def test_exact_vs_loopy(self):
        proc = _run("exact_vs_loopy.py", "3", "8")
        assert proc.returncode == 0, proc.stderr
        assert "junction-tree exact inference" in proc.stdout
        assert "sum-product" in proc.stdout

"""The three evaluation use cases (paper §4)."""

import numpy as np
import pytest

from repro.core import LoopyBP, observe
from repro.usecases import USE_CASES
from repro.usecases.binary import binary_use_case
from repro.usecases.image import (
    decode_image,
    noisy_image_graph,
    smoothness_potential,
)
from repro.usecases.virus import VirusModel, virus_use_case


class TestCatalogue:
    def test_belief_counts(self):
        assert USE_CASES == {"binary": 2, "virus": 3, "image": 32}


class TestBinary:
    def test_priors_shape_and_normalization(self, rng):
        priors, pot = binary_use_case(rng, 100)
        assert priors.shape == (100, 2)
        np.testing.assert_allclose(priors.sum(axis=1), 1.0, atol=1e-5)
        assert pot.shape == (2, 2)

    def test_believers_planted(self, rng):
        priors, _ = binary_use_case(rng, 1000, believer_fraction=0.3)
        confident = (priors[:, 1] > 0.8).mean()
        assert 0.2 < confident < 0.4

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            binary_use_case(rng, 10, believer_fraction=1.5)


class TestVirus:
    def test_three_states(self, rng):
        priors, pot = virus_use_case(rng, 50)
        assert priors.shape == (50, 3) and pot.shape == (3, 3)
        np.testing.assert_allclose(pot.sum(axis=1), 1.0, atol=1e-5)

    def test_infection_spreads_to_neighbours(self):
        """Observing a node infected raises neighbours' infection belief."""
        from repro.core.graph import BeliefGraph

        rng = np.random.default_rng(0)
        priors, pot = virus_use_case(rng, 5, infected_fraction=0.0, recovered_fraction=0.0)
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4]])
        g = BeliefGraph.from_undirected(priors, edges, pot)
        base = LoopyBP().run(g.copy()).beliefs
        g_obs = g.copy()
        observe(g_obs, 2, 1)  # node 2 infected for certain
        after = LoopyBP().run(g_obs).beliefs
        assert after[1, 1] > base[1, 1]
        assert after[3, 1] > base[3, 1]

    def test_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            virus_use_case(rng, 10, infected_fraction=0.8, recovered_fraction=0.5)
        with pytest.raises(ValueError):
            VirusModel(transmission=1.5).potential()


class TestImage:
    def test_smoothness_favours_close_levels(self):
        pot = smoothness_potential(8, sigma=1.0)
        assert pot[3, 3] > pot[3, 4] > pot[3, 6]
        np.testing.assert_allclose(pot.sum(axis=1), 1.0, atol=1e-5)

    def test_denoising_recovers_flat_regions(self):
        clean = np.zeros((12, 12), dtype=np.int64)
        clean[:, 6:] = 20  # two flat halves
        graph, noisy = noisy_image_graph(clean, noise_sigma=2.5, seed=1)
        assert graph.n_states == 32
        result = LoopyBP().run(graph)
        restored = decode_image(result.beliefs, clean.shape)
        noisy_err = np.abs(noisy - clean).mean()
        restored_err = np.abs(restored - clean).mean()
        assert restored_err < noisy_err  # BP denoises

    def test_rejects_out_of_range_pixels(self):
        with pytest.raises(ValueError, match="levels"):
            noisy_image_graph(np.full((4, 4), 99))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            noisy_image_graph(np.zeros(16, dtype=np.int64))

    def test_overlay_for_arbitrary_topology(self, rng):
        from repro.usecases.image import image_use_case

        priors, pot = image_use_case(rng, 40)
        assert priors.shape == (40, 32) and pot.shape == (32, 32)
        np.testing.assert_allclose(priors.sum(axis=1), 1.0, atol=1e-4)

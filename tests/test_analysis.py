"""repro.analysis: static checker framework, project rules, race detector.

The lint fixtures under ``tests/fixtures/lint/`` are deliberately buggy
source files — each carries ``# FINDING`` markers on the lines a rule
must flag and clean twins the rule must not.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    Analyzer,
    RaceDetector,
    RaceError,
    all_rules,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.races import TrackedArray

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"
SRC = REPO / "src"


def run_rule(rule_id: str, fixture: str):
    """Analyze one fixture with one rule; returns the AnalysisResult."""
    rules = [r for r in all_rules() if r.id == rule_id]
    assert rules, f"unknown rule {rule_id}"
    return Analyzer(rules=rules, root=REPO).run([FIXTURES / fixture])


def marked_lines(fixture: str) -> set[int]:
    """1-based lines carrying a ``# FINDING`` marker in the fixture."""
    lines = (FIXTURES / fixture).read_text().splitlines()
    return {i for i, line in enumerate(lines, 1) if "# FINDING" in line}


def assert_matches_markers(rule_id: str, fixture: str):
    result = run_rule(rule_id, fixture)
    assert {f.line for f in result.findings} == marked_lines(fixture)
    return result


class TestNumericRules:
    def test_unguarded_log(self):
        result = assert_matches_markers("RPR101", "numeric_log.py")
        assert result.suppressed == 1  # the noqa'd log

    def test_unguarded_divide(self):
        assert_matches_markers("RPR102", "numeric_divide.py")

    def test_inplace_shared_mutation(self):
        assert_matches_markers("RPR103", "inplace_shared.py")


class TestConcurrencyRules:
    def test_unlocked_attribute(self):
        result = run_rule("RPR201", "concurrency_lock.py")
        # bad_total reads two guarded attrs on one line; bad_reset writes one
        assert {f.line for f in result.findings} == marked_lines("concurrency_lock.py")
        assert len(result.findings) == 3

    def test_loop_variable_capture(self):
        assert_matches_markers("RPR202", "loop_capture.py")


class TestHygieneRules:
    def test_deprecated_shim(self):
        assert_matches_markers("RPR301", "hygiene_shims.py")

    def test_unresolvable_qualifier(self):
        assert_matches_markers("RPR302", "hygiene_qualifiers.py")

    def test_unknown_config_kwarg(self):
        result = assert_matches_markers("RPR303", "config_kwargs.py")
        assert result.suppressed == 1

    def test_messages_name_the_replacement(self):
        result = run_rule("RPR303", "config_kwargs.py")
        deprecated = [f for f in result.findings if "deprecated shim" in f.message]
        assert deprecated and "schedule=" in deprecated[0].message

    def test_unknown_shard_policy(self):
        result = assert_matches_markers("RPR304", "shard_policy.py")
        messages = " ".join(f.message for f in result.findings)
        assert "staleness-free" in messages  # sync+staleness names the fix
        assert "does not resolve" in messages

    def test_frozen_graph_mutation(self):
        result = assert_matches_markers("RPR306", "stream_mutation.py")
        messages = " ".join(f.message for f in result.findings)
        assert "GraphDelta" in messages

    def test_unknown_executor_layout(self):
        result = assert_matches_markers("RPR305", "executor_layout.py")
        messages = " ".join(f.message for f in result.findings)
        assert "unknown executor" in messages
        assert "unknown layout" in messages

    def test_qualifier_executor_layout_suffixes(self):
        from repro.analysis.rules.hygiene import validate_qualifier

        assert validate_qualifier("c-node:sync!compiled%soa") is None
        assert validate_qualifier("sharded:sync@4xbfs+async~2!compiled") is None
        assert "bad executor" in validate_qualifier("c-node:sync!vectorized")
        assert "bad layout" in validate_qualifier("c-node:sync%csr")


class TestFramework:
    def test_rule_catalog_complete(self):
        rules = all_rules()
        assert len(rules) >= 6
        assert len({r.id for r in rules}) == len(rules)
        assert all(r.id.startswith("RPR") and r.description for r in rules)

    def test_repo_src_is_clean(self):
        """Acceptance gate: the shipped tree passes its own checker."""
        result = Analyzer(root=REPO).run([SRC])
        assert not result.errors
        assert [f.format() for f in result.findings] == []

    def test_finding_format_and_fingerprint(self):
        result = run_rule("RPR101", "numeric_log.py")
        f = result.findings[0]
        assert f.format().startswith("tests/fixtures/lint/numeric_log.py:")
        assert f.rule in f.format() and f.name in f.format()
        # fingerprint keys on (rule, path, source text): stable across moves
        assert len(f.fingerprint) == 16
        assert f.fingerprint != result.findings[1].fingerprint

    def test_baseline_round_trip(self, tmp_path):
        result = run_rule("RPR102", "numeric_divide.py")
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result.findings, baseline_path, reason="fixture debt")
        baseline = load_baseline(baseline_path)
        fresh, matched = apply_baseline(list(result.findings), baseline)
        assert fresh == [] and matched == len(result.findings)
        # a finding not in the baseline stays fresh
        other = run_rule("RPR101", "numeric_log.py").findings
        fresh, matched = apply_baseline(list(result.findings) + other, baseline)
        assert fresh == other

    def test_baseline_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCli:
    def test_dirty_fixture_fails(self, capsys):
        code = analysis_main([str(FIXTURES / "numeric_log.py"), "--rules", "RPR101"])
        assert code == 1
        assert "RPR101" in capsys.readouterr().out

    def test_clean_src_passes(self, capsys):
        assert analysis_main([str(SRC), "--baseline",
                              str(REPO / ".analysis-baseline.json")]) == 0

    def test_json_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = analysis_main([str(FIXTURES / "config_kwargs.py"),
                              "--rules", "RPR303",
                              "--json", "--json-report", str(report)])
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["counts"]["RPR303"] == 3
        assert payload["findings"][0]["fingerprint"]

    def test_unknown_rule_id(self, capsys):
        assert analysis_main(["--rules", "RPR999", str(SRC)]) == 2

    def test_write_baseline_then_pass(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        fixture = str(FIXTURES / "numeric_divide.py")
        assert analysis_main([fixture, "--rules", "RPR102",
                              "--write-baseline", str(baseline)]) == 0
        assert analysis_main([fixture, "--rules", "RPR102",
                              "--baseline", str(baseline)]) == 0

    def test_credo_lint_forwards(self, capsys):
        from repro.credo.cli import main as credo_main

        assert credo_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR101" in out and "RPR303" in out


# ---------------------------------------------------------------------------
# dynamic race detector
# ---------------------------------------------------------------------------
def two_threads(fn):
    """Run ``fn(0)`` and ``fn(1)`` on two genuinely concurrent threads."""
    barrier = threading.Barrier(2)
    errors = []

    def run(i):
        barrier.wait()
        try:
            fn(i)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestTrackedArray:
    def test_indexing_returns_plain_ndarray(self):
        det = RaceDetector()
        arr = det.track(np.arange(8, dtype=np.float32).reshape(4, 2), "x")
        assert isinstance(arr, TrackedArray)
        assert type(arr[1:3]) is np.ndarray
        np.testing.assert_array_equal(arr[1], [2.0, 3.0])

    def test_reads_and_writes_logged(self):
        det = RaceDetector()
        arr = det.track(np.zeros((4, 2), dtype=np.float32), "x")
        _ = arr[0]
        arr[1] = 5.0
        kinds = [(a.write, a.rows) for a in det._accesses]
        assert (False, frozenset({0})) in kinds
        assert (True, frozenset({1})) in kinds

    def test_ufunc_results_untracked(self):
        det = RaceDetector()
        arr = det.track(np.ones((4, 2), dtype=np.float32), "x")
        doubled = arr * 2.0
        before = det.n_accesses
        _ = doubled[0]
        assert det.n_accesses == before  # derived temporaries are free


class TestRaceDetector:
    def test_planted_race_is_reported(self):
        det = RaceDetector()
        arr = det.track(np.zeros((4, 2), dtype=np.float32), "shared")
        two_threads(lambda i: arr.__setitem__(1, float(i)))
        races = det.check()
        assert races
        with pytest.raises(RaceError) as excinfo:
            det.assert_race_free()
        assert "shared" in str(excinfo.value)
        assert "write" in det.report()

    def test_lock_synchronized_twin_is_clean(self):
        det = RaceDetector()
        arr = det.track(np.zeros((4, 2), dtype=np.float32), "shared")

        def locked_write(i):
            with det.lock("row1"):
                arr[1] = float(i)

        two_threads(locked_write)
        assert det.check() == []
        assert "race-free" in det.report()

    def test_disjoint_rows_do_not_race(self):
        det = RaceDetector()
        arr = det.track(np.zeros((4, 2), dtype=np.float32), "shared")
        two_threads(lambda i: arr.__setitem__(i, 1.0))
        assert det.check() == []

    def test_epoch_barrier_orders_accesses(self):
        det = RaceDetector()
        arr = det.track(np.zeros((4, 2), dtype=np.float32), "shared")
        done = threading.Event()

        def worker():
            arr[1] = 1.0
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert done.wait(1.0)
        det.on_phase("after-join")  # the join IS a barrier; tell the detector
        arr[1] = 2.0
        assert det.check() == []

    def test_distinct_arrays_do_not_race(self):
        det = RaceDetector()
        a = det.track(np.zeros(4, dtype=np.float32), "shard0.messages")
        b = det.track(np.zeros(4, dtype=np.float32), "shard1.messages")
        two_threads(lambda i: (a if i else b).__setitem__(1, 1.0))
        assert det.check() == []


class TestShardedInstrumentation:
    def _sharded(self, seed=5):
        from repro.core.sharded import ShardedGraph
        from tests.conftest import make_loopy_graph

        g = make_loopy_graph(seed=seed, n_nodes=40, n_edges=80)
        return ShardedGraph.build(g, n_shards=4, method="bfs")

    def test_instrumented_run_is_race_free(self):
        from repro.core.sharded import ShardedLoopyBP

        det = RaceDetector()
        with ThreadPoolExecutor(max_workers=4) as pool:
            result = ShardedLoopyBP(pool=pool, instrument=det).run(self._sharded())
        assert result.converged
        assert det.n_accesses > 0 and det.epoch > 0
        det.assert_race_free()

    def test_instrumentation_preserves_numerics(self):
        from repro.core.sharded import ShardedLoopyBP

        det = RaceDetector()
        with ThreadPoolExecutor(max_workers=4) as pool:
            instrumented = ShardedLoopyBP(pool=pool, instrument=det).run(
                self._sharded()
            )
        plain = ShardedLoopyBP().run(self._sharded())
        np.testing.assert_array_equal(instrumented.beliefs, plain.beliefs)
        assert instrumented.iterations == plain.iterations

    def test_planted_unsynchronized_shard_write(self):
        """A boundary exchange racing a shard sweep — the bug class the
        epoch hooks exist to catch.  Without the pool.map barrier (no
        ``on_phase`` call) the ghost-row copy and the consumer's read
        overlap in one epoch and must be reported."""
        from repro.core.state import LoopyState

        sharded = self._sharded()
        det = RaceDetector()
        states = [LoopyState(sh.graph) for sh in sharded.shards]
        det.on_states(states)
        route = next(r for r in sharded.routes if len(r.src_edges))
        consumer = states[route.dst]
        producer = states[route.src]
        barrier = threading.Barrier(2)

        def buggy_sweep_read():
            barrier.wait()
            _ = consumer.messages[route.dst_edges]  # cavity reads ghost rows

        def buggy_exchange_write():
            barrier.wait()
            consumer.messages[route.dst_edges] = producer.messages[route.src_edges]

        t1 = threading.Thread(target=buggy_sweep_read)
        t2 = threading.Thread(target=buggy_exchange_write)
        t1.start(); t2.start(); t1.join(); t2.join()

        races = det.check()
        assert races, "unsynchronized exchange/sweep overlap must be detected"
        assert any(
            f"shard{route.dst}.messages" in acc.array
            for pair in races for acc in pair
        )
        # the fixed runner separates these phases with on_phase barriers:
        det2 = RaceDetector()
        states2 = [LoopyState(sh.graph) for sh in self._sharded().shards]
        det2.on_states(states2)
        consumer2 = states2[route.dst]
        _ = consumer2.messages[route.dst_edges]
        det2.on_phase("exchange")
        consumer2.messages[route.dst_edges] = 0.5
        assert det2.check() == []

    def test_engine_threads_instrument_through_sharded_path(self):
        from repro.graphs.synthetic import synthetic_graph
        from repro.serve import InferenceServer, ServerConfig

        det = RaceDetector()
        config = ServerConfig(
            shards=2, partitioner="bfs", backend="c-node", schedule="sync",
            cache_capacity=0,
        )
        with InferenceServer(config) as srv:
            srv.engine.instrument = det
            srv.register_model("g", synthetic_graph(40, 80, n_states=2, seed=3))
            # several sequential queries: each run must open a fresh epoch,
            # or query N's exchange falsely races query N+1's first sweep
            for evidence in ({"1": 1}, {"3": 0}, {"5": 1}):
                reply = srv.query("g", evidence)
                assert reply.ok
        assert det.n_accesses > 0, "sharded serve path must hit the detector"
        det.assert_race_free()

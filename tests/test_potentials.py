"""Potential stores (paper §2.2): shared vs per-edge."""

import numpy as np
import pytest

from repro.core.potentials import (
    PerEdgePotentialStore,
    SharedPotentialStore,
    attractive_potential,
    random_potential,
)


class TestSharedStore:
    def test_same_matrix_for_every_edge(self):
        mat = attractive_potential(2, 0.8)
        store = SharedPotentialStore(mat, 5)
        for e in range(5):
            np.testing.assert_allclose(store.matrix(e), mat)

    def test_out_of_range_edge(self):
        store = SharedPotentialStore(attractive_potential(2, 0.8), 3)
        with pytest.raises(IndexError):
            store.matrix(3)

    def test_stacked_is_broadcast_no_copy(self):
        store = SharedPotentialStore(attractive_potential(2, 0.8), 1000)
        stack = store.stacked()
        assert stack.shape == (1000, 2, 2)
        assert stack.base is not None  # broadcast view, not materialized

    def test_nbytes_is_single_matrix(self):
        mat = attractive_potential(4, 0.8)
        store = SharedPotentialStore(mat, 10**6)
        assert store.nbytes() == mat.nbytes

    def test_transpose_for_reverse(self):
        rng = np.random.default_rng(0)
        mat = random_potential(3, rng)
        rev = SharedPotentialStore(mat, 4).transpose_for_reverse()
        np.testing.assert_allclose(rev.matrix(0), mat.T)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            SharedPotentialStore(np.array([[0.5, -0.5], [0.5, 0.5]]), 1)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            SharedPotentialStore(np.ones(4), 1)


class TestPerEdgeStore:
    def test_stacked_input(self):
        mats = np.random.default_rng(0).random((4, 2, 2)).astype(np.float32)
        store = PerEdgePotentialStore(mats)
        assert len(store) == 4
        np.testing.assert_allclose(store.matrix(2), mats[2])
        assert not store.is_ragged

    def test_ragged_input(self):
        mats = [np.ones((2, 2), dtype=np.float32), np.ones((3, 2), dtype=np.float32)]
        store = PerEdgePotentialStore(mats)
        assert store.is_ragged
        assert store.matrix(1).shape == (3, 2)
        with pytest.raises(ValueError):
            store.stacked()

    def test_transpose_for_reverse_stack(self):
        mats = np.random.default_rng(1).random((3, 2, 2)).astype(np.float32)
        rev = PerEdgePotentialStore(mats).transpose_for_reverse()
        np.testing.assert_allclose(rev.matrix(1), mats[1].T)

    def test_nbytes_counts_all(self):
        mats = np.ones((10, 2, 2), dtype=np.float32)
        assert PerEdgePotentialStore(mats).nbytes() == mats.nbytes

    def test_shared_is_smaller_than_per_edge(self):
        """The §2.2 motivation: the shared matrix removes the dominant
        memory consumer."""
        mats = np.broadcast_to(attractive_potential(2, 0.7), (10_000, 2, 2)).copy()
        shared = SharedPotentialStore(attractive_potential(2, 0.7), 10_000)
        per_edge = PerEdgePotentialStore(mats)
        assert shared.nbytes() * 1000 < per_edge.nbytes()


class TestGenerators:
    def test_random_potential_rows_normalized(self):
        rng = np.random.default_rng(0)
        mat = random_potential(4, rng)
        np.testing.assert_allclose(mat.sum(axis=1), 1.0, atol=1e-5)
        assert (mat > 0).all()

    def test_attractive_diagonal_dominates(self):
        mat = attractive_potential(3, 0.9)
        off = mat + np.diag(np.full(3, -np.inf))
        assert (np.diag(mat) > off.max(axis=1)).all()
        np.testing.assert_allclose(mat.sum(axis=1), 1.0, atol=1e-6)

    @pytest.mark.parametrize("strength", [0.0, 1.0, -0.5])
    def test_attractive_rejects_bad_strength(self, strength):
        with pytest.raises(ValueError):
            attractive_potential(2, strength)

    def test_attractive_rejects_single_state(self):
        with pytest.raises(ValueError):
            attractive_potential(1, 0.5)

"""Node and edge sweep kernels (paper §3.3): equivalence and accounting."""

import numpy as np
import pytest

from repro.core.edge_kernel import edge_sweep
from repro.core.node_kernel import node_sweep
from repro.core.state import LoopyState
from tests.conftest import make_loopy_graph


def _fresh_state(seed=0, **kwargs):
    return LoopyState(make_loopy_graph(seed=seed, **kwargs))


class TestNodeSweep:
    def test_returns_delta_per_active_node(self):
        state = _fresh_state()
        active = np.arange(state.n)
        deltas, stats = node_sweep(state, active)
        assert len(deltas) == state.n
        assert stats.nodes_processed == state.n
        assert stats.edges_processed == state.m  # all in-edges touched

    def test_beliefs_stay_normalized(self):
        state = _fresh_state(seed=1)
        node_sweep(state, np.arange(state.n))
        np.testing.assert_allclose(state.beliefs.sum(axis=1), 1.0, atol=1e-5)

    def test_subset_only_touches_subset(self):
        state = _fresh_state(seed=2)
        before = state.beliefs.copy()
        active = np.array([0, 1])
        node_sweep(state, active)
        untouched = np.setdiff1d(np.arange(state.n), active)
        np.testing.assert_allclose(state.beliefs[untouched], before[untouched])

    def test_empty_active_is_noop(self):
        state = _fresh_state()
        deltas, stats = node_sweep(state, np.empty(0, dtype=np.int64))
        assert len(deltas) == 0 and stats.flops == 0

    def test_observed_nodes_not_updated(self):
        graph = make_loopy_graph(seed=3)
        from repro.core.observation import observe

        observe(graph, 2, 1)
        state = LoopyState(graph)
        node_sweep(state, np.arange(state.n))
        np.testing.assert_allclose(state.beliefs[2], [0.0, 1.0], atol=1e-6)

    def test_no_atomics_for_node_paradigm(self):
        state = _fresh_state()
        _, stats = node_sweep(state, np.arange(state.n))
        assert stats.atomic_ops == 0
        assert stats.random_accesses == 2 * state.m

    def test_damping_slows_message_change(self):
        s_plain = _fresh_state(seed=4)
        s_damped = _fresh_state(seed=4)
        d0, _ = node_sweep(s_plain, np.arange(s_plain.n), damping=0.0)
        d1, _ = node_sweep(s_damped, np.arange(s_damped.n), damping=0.8)
        assert d1.sum() < d0.sum()

    def test_unknown_rule_raises(self):
        state = _fresh_state()
        with pytest.raises(ValueError, match="update_rule"):
            node_sweep(state, np.arange(state.n), update_rule="bogus")


class TestEdgeSweep:
    def test_full_sweep_stats(self):
        state = _fresh_state()
        deltas, touched, stats = edge_sweep(state, np.arange(state.m))
        assert len(deltas) == state.m
        assert stats.edges_processed == state.m
        # one atomic transaction per processed edge (§3.3)
        assert stats.atomic_ops == state.m
        assert stats.random_accesses == state.m

    def test_touched_nodes_are_destinations(self):
        state = _fresh_state(seed=5)
        active = np.arange(4)
        _, touched, _ = edge_sweep(state, active)
        assert set(touched).issubset(set(state.dst[active].tolist()))

    def test_chunked_vs_single_chunk_same_fixed_point_direction(self):
        s1 = _fresh_state(seed=6)
        s8 = _fresh_state(seed=6)
        edge_sweep(s1, np.arange(s1.m), chunks=1)
        edge_sweep(s8, np.arange(s8.m), chunks=8)
        # same messages processed; chunked uses fresher beliefs so results
        # may differ slightly but must stay normalized
        np.testing.assert_allclose(s1.beliefs.sum(axis=1), 1.0, atol=1e-5)
        np.testing.assert_allclose(s8.beliefs.sum(axis=1), 1.0, atol=1e-5)

    def test_empty_active_is_noop(self):
        state = _fresh_state()
        deltas, touched, stats = edge_sweep(state, np.empty(0, dtype=np.int64))
        assert len(deltas) == 0 and len(touched) == 0 and stats.flops == 0

    def test_observed_destinations_not_recombined(self):
        graph = make_loopy_graph(seed=7)
        from repro.core.observation import observe

        observe(graph, 1, 0)
        state = LoopyState(graph)
        edge_sweep(state, np.arange(state.m))
        np.testing.assert_allclose(state.beliefs[1], [1.0, 0.0], atol=1e-6)


class TestParadigmEquivalence:
    def test_jacobi_sweeps_agree(self):
        """One synchronous pass of either paradigm computes the same
        messages (edge with chunks=1 is exactly Jacobi too)."""
        s_node = _fresh_state(seed=8)
        s_edge = _fresh_state(seed=8)
        node_sweep(s_node, np.arange(s_node.n))
        edge_sweep(s_edge, np.arange(s_edge.m), chunks=1)
        np.testing.assert_allclose(s_node.messages, s_edge.messages, atol=1e-5)
        np.testing.assert_allclose(s_node.beliefs, s_edge.beliefs, atol=1e-5)

    def test_broadcast_rule_agreement(self):
        s_node = _fresh_state(seed=9)
        s_edge = _fresh_state(seed=9)
        node_sweep(s_node, np.arange(s_node.n), update_rule="broadcast")
        edge_sweep(s_edge, np.arange(s_edge.m), chunks=1, update_rule="broadcast")
        np.testing.assert_allclose(s_node.beliefs, s_edge.beliefs, atol=1e-5)

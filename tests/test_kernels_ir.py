"""Buffer-op kernel IR: plan-time verification, runtime cross-check.

The compiled executor's lowering emits a :class:`KernelProgram` per
paradigm; these tests pin the contract from the verifier side — every
schedule × paradigm lowers to a program that passes static verification
with posteriors still bit-exact against the interpreted executor, a
deliberately-aliased program is rejected, and the runtime buffer check
catches shape/dtype/alias drift the static pass cannot see.
"""

import numpy as np
import pytest

from repro.core.convergence import ConvergenceCriterion
from repro.core.loopy import LoopyBP
from repro.core.state import LoopyState
from repro.kernels.compiled import CompiledExecutor
from repro.kernels.ir import (
    BufferOp,
    BufferSpec,
    KernelProgram,
    KernelVerificationError,
    check_buffers,
    verify_program,
)
from tests.conftest import make_loopy_graph

CRIT = ConvergenceCriterion(threshold=1e-6, max_iterations=60)
SCHEDULES = ("sync", "work_queue", "residual", "relaxed")


def _graph(seed: int = 42):
    return make_loopy_graph(seed=seed, n_nodes=40, n_edges=90, n_states=3)


class TestProgramEmission:
    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    def test_lowering_emits_verified_program(self, paradigm):
        state = LoopyState(_graph())
        executor = CompiledExecutor(state, paradigm=paradigm)
        assert list(executor.programs) == [paradigm]
        program = executor.programs[paradigm]
        verify_program(program)  # idempotent: already ran at lowering
        assert set(program.outputs) == {
            "beliefs", "messages", "log_messages", "log_msg_sum",
        }
        described = program.describe()
        assert program.name in described
        assert "apply_potential" in described

    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    def test_runtime_buffers_consistent(self, paradigm):
        state = LoopyState(_graph())
        executor = CompiledExecutor(state, paradigm=paradigm)
        assert executor.verify_buffers(state) > 0

    def test_runtime_check_catches_foreign_state(self):
        # a state with different dimensions must fail the runtime check
        executor = CompiledExecutor(LoopyState(_graph()), paradigm="node")
        other = LoopyState(make_loopy_graph(seed=7, n_nodes=12, n_edges=30,
                                            n_states=2))
        with pytest.raises(KernelVerificationError):
            executor.verify_buffers(other)


class TestVerifiedParity:
    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_verified_runs_stay_bit_exact(self, schedule, paradigm):
        """verify_kernels=True must change nothing but add the check."""
        ref = LoopyBP(
            paradigm=paradigm, schedule=schedule, criterion=CRIT,
            executor="interpreted",
        ).run(_graph())
        got = LoopyBP(
            paradigm=paradigm, schedule=schedule, criterion=CRIT,
            executor="compiled", verify_kernels=True,
        ).run(_graph())
        assert got.iterations == ref.iterations
        np.testing.assert_array_equal(got.beliefs, ref.beliefs)

    def test_interpreted_executor_is_a_no_op(self):
        # the flag must not require the interpreted executor to lower
        result = LoopyBP(
            schedule="sync", criterion=CRIT,
            executor="interpreted", verify_kernels=True,
        ).run(_graph())
        assert result.iterations > 0


def _program(ops, *, aliases=(), outputs=("y",)):
    buffers = (
        BufferSpec("x", ("m", "b"), "float32", "state"),
        BufferSpec("y", ("m", "b"), "float32", "state"),
        BufferSpec("tmp", ("m", "b"), "float32", "scratch"),
        BufferSpec("view", ("m", "b"), "float32", "scratch"),
    )
    return KernelProgram(
        name="test", buffers=buffers, ops=tuple(ops),
        aliases=tuple(aliases), outputs=tuple(outputs),
    )


class TestStaticVerifier:
    def test_clean_program_passes(self):
        verify_program(_program([
            BufferOp("load", reads=("x",), writes=("tmp",)),
            BufferOp("store", reads=("tmp",), writes=("y",)),
        ]))

    def test_rejects_deliberate_alias_clobber(self):
        """The acceptance fixture: tmp and view share memory, the write
        through view clobbers tmp before its read."""
        program = _program(
            [
                BufferOp("load", reads=("x",), writes=("tmp",)),
                BufferOp("clobber", reads=("x",), writes=("view",)),
                BufferOp("store", reads=("tmp",), writes=("y",)),
            ],
            aliases=[("tmp", "view")],
        )
        with pytest.raises(KernelVerificationError) as exc:
            verify_program(program)
        assert "write-after-read" in str(exc.value)

    def test_rejects_inplace_without_declaration(self):
        with pytest.raises(KernelVerificationError) as exc:
            verify_program(_program([
                BufferOp("load", reads=("x",), writes=("tmp",)),
                BufferOp("gather", reads=("tmp",), writes=("tmp",)),
                BufferOp("store", reads=("tmp",), writes=("y",)),
            ]))
        assert "inplace_ok" in str(exc.value)

    def test_accepts_declared_inplace(self):
        verify_program(_program([
            BufferOp("load", reads=("x",), writes=("tmp",)),
            BufferOp("scale", reads=("tmp",), writes=("tmp",), inplace_ok=True),
            BufferOp("store", reads=("tmp",), writes=("y",)),
        ]))

    def test_rejects_uninitialized_scratch_read(self):
        with pytest.raises(KernelVerificationError) as exc:
            verify_program(_program([
                BufferOp("store", reads=("tmp",), writes=("y",)),
            ]))
        assert "before anything writes it" in str(exc.value)

    def test_rejects_undeclared_buffer(self):
        with pytest.raises(KernelVerificationError) as exc:
            verify_program(_program([
                BufferOp("load", reads=("ghost",), writes=("y",)),
            ]))
        assert "undeclared" in str(exc.value)

    def test_rejects_unwritten_output(self):
        with pytest.raises(KernelVerificationError) as exc:
            verify_program(_program([
                BufferOp("load", reads=("x",), writes=("tmp",)),
            ]))
        assert "never written" in str(exc.value)


class TestRuntimeCheck:
    def _program(self):
        return _program([
            BufferOp("load", reads=("x",), writes=("tmp",)),
            BufferOp("store", reads=("tmp",), writes=("y",)),
        ])

    def test_consistent_buffers_pass(self):
        arrays = {
            "x": np.zeros((6, 3), np.float32),
            "y": np.zeros((6, 3), np.float32),
            "tmp": np.zeros((6, 3), np.float32),
        }
        assert check_buffers(self._program(), arrays, {"m": 6, "b": 3}) == []

    def test_catches_dtype_and_shape_drift(self):
        arrays = {
            "x": np.zeros((6, 3), np.float64),
            "y": np.zeros((5, 3), np.float32),
        }
        problems = check_buffers(self._program(), arrays, {"m": 6, "b": 3})
        assert any("dtype" in p for p in problems)
        assert any("shape[0]" in p for p in problems)

    def test_catches_undeclared_sharing(self):
        base = np.zeros((6, 3), np.float32)
        arrays = {"x": base, "tmp": base[:, :]}
        problems = check_buffers(self._program(), arrays, {"m": 6, "b": 3})
        assert any("share memory" in p for p in problems)

    def test_catches_missing_declared_alias(self):
        program = _program(
            [
                BufferOp("load", reads=("x",), writes=("tmp",)),
                BufferOp("store", reads=("tmp",), writes=("y",)),
            ],
            aliases=[("tmp", "view")],
        )
        arrays = {
            "tmp": np.zeros((6, 3), np.float32),
            "view": np.zeros((6, 3), np.float32),
        }
        problems = check_buffers(program, arrays, {"m": 6, "b": 3})
        assert any("declared aliasing" in p for p in problems)


class TestCliPreflight:
    def test_verify_kernels_flag(self, capsys):
        from repro.credo.cli import main as credo_main

        code = credo_main([
            "run", "examples/family_out.bif", "--verify-kernels", "--top", "0",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "kernel verification OK [node]" in err
        assert "kernel verification OK [edge]" in err

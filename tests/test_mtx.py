"""The MTX dual-file format (paper §3.2)."""

import numpy as np
import pytest

from repro.core.potentials import attractive_potential, random_potential
from repro.io.mtx import MtxFormatError, read_mtx_graph, write_mtx_graph
from tests.conftest import make_loopy_graph


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "g.nodes", tmp_path / "g.edges"


class TestRoundtrip:
    def test_shared_inline(self, paths):
        g = make_loopy_graph(seed=1, n_nodes=20, n_edges=40)
        write_mtx_graph(g, *paths)
        g2 = read_mtx_graph(*paths)
        assert g2.n_nodes == g.n_nodes and g2.n_edges == g.n_edges
        assert g2.potentials.shared
        np.testing.assert_allclose(g2.priors.dense(), g.priors.dense(), atol=1e-5)
        np.testing.assert_allclose(
            g2.potentials.matrix(0), g.potentials.matrix(0), atol=1e-5
        )

    def test_expanded_matrices(self, paths):
        g = make_loopy_graph(seed=2, n_nodes=10, n_edges=15)
        write_mtx_graph(g, *paths, inline_shared=False)
        g2 = read_mtx_graph(*paths, collapse_identical=False)
        assert not g2.potentials.shared
        np.testing.assert_allclose(
            g2.potentials.matrix(0), g.potentials.matrix(0), atol=1e-5
        )

    def test_auto_collapse_identical(self, paths):
        g = make_loopy_graph(seed=3, n_nodes=10, n_edges=15)
        write_mtx_graph(g, *paths, inline_shared=False)
        assert read_mtx_graph(*paths).potentials.shared

    def test_heterogeneous_per_edge_matrices(self, paths):
        rng = np.random.default_rng(4)
        mats = np.stack([random_potential(2, rng) for _ in range(3)])
        from repro.core.graph import BeliefGraph

        g = BeliefGraph.from_undirected(
            rng.dirichlet([1, 1], size=4),
            np.array([[0, 1], [1, 2], [2, 3]]),
            per_edge_potentials=mats,
        )
        write_mtx_graph(g, *paths)
        g2 = read_mtx_graph(*paths)
        assert not g2.potentials.shared
        for e in range(g.n_edges):
            np.testing.assert_allclose(
                g2.potentials.matrix(e), g.potentials.matrix(e), atol=1e-5
            )

    def test_bp_results_survive_roundtrip(self, paths):
        from repro.core import LoopyBP

        g = make_loopy_graph(seed=5, n_nodes=15, n_edges=25)
        expected = LoopyBP().run(g.copy()).beliefs
        write_mtx_graph(g, *paths)
        got = LoopyBP().run(read_mtx_graph(*paths)).beliefs
        np.testing.assert_allclose(got, expected, atol=1e-4)

    def test_three_state_roundtrip(self, paths):
        g = make_loopy_graph(seed=6, n_nodes=8, n_edges=12, n_states=3)
        write_mtx_graph(g, *paths)
        g2 = read_mtx_graph(*paths)
        assert g2.n_states == 3


class TestErrors:
    def _write(self, paths, node_text, edge_text):
        paths[0].write_text(node_text)
        paths[1].write_text(edge_text)

    NODE_OK = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n1 1 0.5 0.5\n2 2 0.4 0.6\n"
    )
    EDGE_OK = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n1 2 0.9 0.1 0.1 0.9\n"
    )

    def test_valid_minimal(self, paths):
        self._write(paths, self.NODE_OK, self.EDGE_OK)
        g = read_mtx_graph(*paths)
        assert g.n_nodes == 2 and g.n_edges == 2

    def test_missing_banner(self, paths):
        self._write(paths, "2 2 2\n1 1 0.5 0.5\n2 2 0.4 0.6\n", self.EDGE_OK)
        with pytest.raises(MtxFormatError, match="banner"):
            read_mtx_graph(*paths)

    def test_non_square_node_file(self, paths):
        bad = self.NODE_OK.replace("2 2 2", "2 3 2")
        self._write(paths, bad, self.EDGE_OK)
        with pytest.raises(MtxFormatError, match="square"):
            read_mtx_graph(*paths)

    def test_non_self_cycling_node(self, paths):
        bad = self.NODE_OK.replace("1 1 0.5 0.5", "1 2 0.5 0.5")
        self._write(paths, bad, self.EDGE_OK)
        with pytest.raises(MtxFormatError, match="self-cycling"):
            read_mtx_graph(*paths)

    def test_duplicate_node(self, paths):
        bad = self.NODE_OK.replace("2 2 0.4 0.6", "1 1 0.4 0.6")
        self._write(paths, bad, self.EDGE_OK)
        with pytest.raises(MtxFormatError, match="duplicate"):
            read_mtx_graph(*paths)

    def test_entry_count_mismatch(self, paths):
        bad = self.NODE_OK.replace("2 2 2", "2 2 3")
        self._write(paths, bad, self.EDGE_OK)
        with pytest.raises(MtxFormatError, match="declared 3 entries"):
            read_mtx_graph(*paths)

    def test_inconsistent_belief_width(self, paths):
        bad = self.NODE_OK.replace("2 2 0.4 0.6", "2 2 0.4 0.3 0.3")
        self._write(paths, bad, self.EDGE_OK)
        with pytest.raises(MtxFormatError, match="expected 2 probabilities"):
            read_mtx_graph(*paths)

    def test_edge_endpoint_out_of_range(self, paths):
        bad = self.EDGE_OK.replace("1 2", "1 9")
        self._write(paths, self.NODE_OK, bad)
        with pytest.raises(MtxFormatError, match="out of range"):
            read_mtx_graph(*paths)

    def test_edge_matrix_size_mismatch(self, paths):
        bad = self.EDGE_OK.replace("0.9 0.1 0.1 0.9", "0.9 0.1")
        self._write(paths, self.NODE_OK, bad)
        with pytest.raises(MtxFormatError, match="matrix entries"):
            read_mtx_graph(*paths)

    def test_edge_dims_disagree_with_nodes(self, paths):
        bad = self.EDGE_OK.replace("2 2 1", "3 3 1")
        self._write(paths, self.NODE_OK, bad)
        with pytest.raises(MtxFormatError, match="disagree"):
            read_mtx_graph(*paths)

    def test_shared_directive_wrong_size(self, paths):
        bad = (
            "%%MatrixMarket matrix coordinate real general\n"
            "%credo shared-potential: 0.9 0.1\n"
            "2 2 1\n1 2\n"
        )
        self._write(paths, self.NODE_OK, bad)
        with pytest.raises(MtxFormatError, match="shared-potential needs 4"):
            read_mtx_graph(*paths)

    def test_comments_and_blank_lines_tolerated(self, paths):
        node = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n\n2 2 2\n\n1 1 0.5 0.5\n% mid comment\n2 2 0.4 0.6\n"
        )
        self._write(paths, node, self.EDGE_OK)
        assert read_mtx_graph(*paths).n_nodes == 2


class TestDetect:
    def test_detect_and_load(self, tmp_path, family_out_bif):
        from repro.io.detect import detect_format, load_graph

        bif = tmp_path / "net.bif"
        bif.write_text(family_out_bif)
        assert detect_format(bif) == "bif"
        g = load_graph(bif)
        assert g.n_nodes == 5

        nodes, edges = tmp_path / "g.nodes", tmp_path / "g.edges"
        write_mtx_graph(make_loopy_graph(seed=7, n_nodes=6, n_edges=8), nodes, edges)
        assert detect_format(nodes) == "mtx"
        assert load_graph(nodes, edges).n_nodes == 6
        # default edge-path resolution (same stem, .edges suffix)
        assert load_graph(nodes).n_nodes == 6

    def test_detect_xml(self, tmp_path):
        from repro.io.detect import detect_format

        p = tmp_path / "net.xmlbif"
        p.write_text("<?xml version='1.0'?><BIF></BIF>")
        assert detect_format(p) == "xmlbif"

    def test_unknown_format(self, tmp_path):
        from repro.io.detect import detect_format

        p = tmp_path / "mystery.dat"
        p.write_text("hello world\n")
        with pytest.raises(ValueError, match="cannot determine"):
            detect_format(p)

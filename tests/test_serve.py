"""The serving layer: batching parity, isolation, admission, caching, metrics.

The load-bearing guarantee tested here is *trajectory parity*: a query
served through the batched union-graph path must produce posteriors
identical (to float32 tolerance) to a solo ``Credo.run`` on a copied,
observed graph — including under concurrent clients with conflicting
evidence.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.loopy import LoopyBP, LoopyConfig
from repro.core.convergence import ConvergenceCriterion
from repro.core.observation import observe
from repro.graphs.synthetic import synthetic_graph
from repro.serve import (
    AdmissionQueue,
    AdmissionRejected,
    InferenceServer,
    LatencyHistogram,
    ProtocolError,
    QueryRequest,
    ResultCache,
    ServerConfig,
    cache_key,
    run_batched,
)
from repro.serve.protocol import parse_line

REPO = Path(__file__).parent.parent
FAMILY_BIF = REPO / "examples" / "family_out.bif"


def small_graph(seed=3):
    return synthetic_graph(60, 180, n_states=3, seed=seed)


@pytest.fixture
def server():
    srv = InferenceServer(
        ServerConfig(max_batch=8, queue_capacity=32, cache_capacity=64)
    )
    srv.register_model("g", small_graph())
    yield srv
    srv.stop()


def solo_posteriors(graph, config, evidence):
    view = graph.copy()
    for node, state in evidence:
        observe(view, node, state)
    result = LoopyBP(config).run(view)
    return np.asarray(result.beliefs, dtype=np.float32), result.iterations


class TestBatchedRunnerParity:
    """run_batched == N independent solo runs, trajectory for trajectory."""

    @pytest.mark.parametrize("paradigm", ["node", "edge"])
    @pytest.mark.parametrize(
        "schedule", ["sync", "work_queue", "residual", "relaxed"]
    )
    def test_matches_solo_runs(self, paradigm, schedule):
        graph = small_graph()
        config = LoopyConfig(
            paradigm=paradigm,
            criterion=ConvergenceCriterion(threshold=1e-3, max_iterations=100),
            schedule=schedule,
        )
        evidences = [
            [],
            [(0, 1)],
            [(5, 2), (17, 0)],
            [(5, 0)],  # conflicts with the previous query's clamp on node 5
        ]
        runs, _ = run_batched(graph, config, evidences)
        for evidence, run in zip(evidences, runs):
            ref, ref_iters = solo_posteriors(graph, config, evidence)
            assert run.iterations == ref_iters, (paradigm, schedule, evidence)
            np.testing.assert_allclose(run.beliefs, ref, atol=1e-6)

    def test_union_reuse_stays_exact(self):
        graph = small_graph()
        config = LoopyConfig(paradigm="node", schedule="work_queue")
        evidences = [[(2, 1)], [(9, 0)], []]
        runs1, union = run_batched(graph, config, evidences)
        runs2, _ = run_batched(graph, config, evidences, union=union)
        for a, b in zip(runs1, runs2):
            assert a.iterations == b.iterations
            np.testing.assert_array_equal(a.beliefs, b.beliefs)

    def test_master_graph_untouched(self):
        graph = small_graph()
        before = np.array(graph.beliefs.dense(), copy=True)
        run_batched(
            graph,
            LoopyConfig(paradigm="edge", schedule="residual"),
            [[(1, 0)], [(1, 2)]],
        )
        assert not graph.observed.any()
        np.testing.assert_array_equal(graph.beliefs.dense(), before)


class TestEvidenceIsolation:
    def test_concurrent_conflicting_clients_match_baseline(self, server):
        graph = server.registry.get("g").graph
        plan = server.registry.get("g").plan
        # mixed evidence, including direct conflicts on the same node
        evidences = [
            {},
            {"3": 0},
            {"3": 1},
            {"3": 2},
            {"10": 1, "20": 0},
            {"10": 2, "20": 1},
            {},
            {"55": 1},
        ]
        results: list[np.ndarray | None] = [None] * len(evidences)

        def client(i):
            results[i] = server.query_posteriors("g", evidences[i])

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(evidences))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for i, evidence in enumerate(evidences):
            view = graph.copy()
            for node, state in evidence.items():
                observe(view, node, state)
            ref = np.asarray(
                server.credo.run(view, plan=plan).beliefs, dtype=np.float32
            )
            np.testing.assert_allclose(results[i], ref, atol=1e-6)
        # no query leaked evidence into the resident master copy
        assert not graph.observed.any()

    def test_bad_evidence_fails_alone(self, server):
        good = server.query("g", {"1": 1})
        bad = server.query("g", {"no_such_node": 0})
        assert good.ok
        assert not bad.ok and bad.error == "bad_evidence"


class TestAdmissionControl:
    def test_capacity_plus_one_rejected_with_retry_after(self):
        srv = InferenceServer(
            ServerConfig(queue_capacity=3, max_batch=2), autostart=False
        )
        srv.register_model("g", small_graph())
        tickets = [
            srv.submit(QueryRequest(model="g", evidence={})) for _ in range(3)
        ]
        with pytest.raises(AdmissionRejected) as excinfo:
            srv.submit(QueryRequest(model="g", evidence={}))
        assert excinfo.value.retry_after > 0
        assert srv.stats()["rejected_total"] == 1
        # queued work is served, not dropped, once the worker starts
        srv.start()
        for ticket in tickets:
            response = ticket.future.result(30)
            assert response.ok, response.error
        srv.stop()

    def test_deadline_expired_while_queued(self):
        srv = InferenceServer(ServerConfig(queue_capacity=4), autostart=False)
        srv.register_model("g", small_graph())
        ticket = srv.submit(
            QueryRequest(model="g", evidence={}, deadline_s=-1.0)
        )
        srv.start()
        response = ticket.future.result(30)
        srv.stop()
        assert not response.ok and response.error == "deadline_expired"
        assert srv.stats()["deadline_expired_total"] == 1

    def test_unknown_model_answers_immediately(self):
        srv = InferenceServer(ServerConfig(), autostart=False)
        response = srv.submit(QueryRequest(model="nope")).future.result(1)
        assert not response.ok and response.error == "unknown_model"
        srv.stop()

    def test_queue_pops_model_affine_batches(self):
        queue = AdmissionQueue(capacity=8)
        for model in ("a", "b", "a", "a"):
            queue.submit({"m": model}, model, None)
        batch = queue.pop_batch(4, window_s=0.0, timeout=0.0)
        # head is 'a'; the later 'a's coalesce past the interleaved 'b'
        assert [t.model for t in batch] == ["a", "a", "a"]
        assert [t.model for t in queue.pop_batch(4, timeout=0.0)] == ["b"]


class TestResultCache:
    def test_hit_and_copy_isolation(self, server):
        first = server.query("g", {"2": 1})
        second = server.query("g", {"2": 1})
        assert not first.cached and second.cached
        np.testing.assert_allclose(
            list(first.posteriors.values()), list(second.posteriors.values())
        )
        assert server.stats()["cache"]["hits"] == 1

    def test_use_cache_false_bypasses(self, server):
        server.query("g", {"4": 0})
        bypass = server.query("g", {"4": 0}, use_cache=False)
        assert not bypass.cached

    def test_reload_invalidates_via_generation(self, tmp_path):
        path = tmp_path / "family.bif"
        path.write_text(FAMILY_BIF.read_text())
        srv = InferenceServer(ServerConfig(max_batch=4))
        srv.load_model("fam", path)
        warm = srv.query("fam", {"hear_bark": 0})
        assert srv.query("fam", {"hear_bark": 0}).cached
        srv.reload_model("fam")
        fresh = srv.query("fam", {"hear_bark": 0})
        assert not fresh.cached  # generation bumped -> old key unreachable
        np.testing.assert_allclose(
            list(warm.posteriors.values()),
            list(fresh.posteriors.values()),
            atol=1e-6,
        )
        srv.stop()

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        keys = [cache_key("m", 1, ((i, 0),), 1e-3, 200, "b", "s") for i in range(3)]
        for key in keys:
            cache.put(key, (np.zeros(1), 1, True))
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[2]) is not None
        assert cache.stats()["evictions"] == 1


class TestAmortizedSelection:
    def test_selection_runs_once_per_model(self):
        srv = InferenceServer(ServerConfig(max_batch=4), autostart=False)
        calls = []
        original = srv.credo.plan

        def counting_plan(graph, **kwargs):
            calls.append(1)
            return original(graph, **kwargs)

        srv.credo.plan = counting_plan
        srv.register_model("g", small_graph())
        srv.start()
        for i in range(5):
            assert srv.query("g", {str(i): 0}).ok
        srv.stop()
        assert len(calls) == 1


class TestMetrics:
    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):
            hist.record(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 100
        # log buckets (2 per octave) bound the estimate, not pin it
        assert 0.030 <= snap["p50_s"] <= 0.100
        assert snap["p95_s"] <= snap["p99_s"] <= snap["max_s"] * 1.5

    def test_snapshot_shape(self, server):
        server.query("g", {"1": 1})
        snap = server.stats()
        for key in (
            "requests_total",
            "rejected_total",
            "queue_depth",
            "latency",
            "batch",
            "cache",
            "backends",
            "models",
        ):
            assert key in snap
        assert set(snap["latency"]) == {"queue_wait", "select", "run", "total"}
        assert snap["latency"]["run"]["count"] >= 1
        json.dumps(snap)  # the snapshot must be wire-serializable


class TestProtocol:
    def test_parse_defaults_to_query(self):
        assert parse_line('{"model": "g"}')["op"] == "query"

    @pytest.mark.parametrize(
        "line", ["not json", "[1,2]", '{"op": 3}']
    )
    def test_rejects_malformed(self, line):
        with pytest.raises(ProtocolError):
            parse_line(line)

    def test_request_validation(self):
        with pytest.raises(ProtocolError):
            QueryRequest.from_payload({"op": "query"})  # no model
        with pytest.raises(ProtocolError):
            QueryRequest.from_payload({"model": "g", "evidence": [1]})
        request = QueryRequest.from_payload(
            {"model": "g", "evidence": {"a": "1"}, "id": 7}
        )
        assert request.evidence == {"a": 1} and request.id == "7"


class TestServeCLI:
    def test_stdin_roundtrip(self):
        lines = "\n".join(
            [
                json.dumps(
                    {
                        "op": "query",
                        "model": "family_out",
                        "evidence": {"hear_bark": 0},
                        "id": "q1",
                    }
                ),
                json.dumps({"op": "stats"}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.credo.cli",
                "serve",
                f"family_out={FAMILY_BIF}",
            ],
            input=lines,
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stderr
        replies = [json.loads(line) for line in proc.stdout.splitlines()]
        assert len(replies) == 3
        query, stats, bye = replies
        assert query["ok"] and query["id"] == "q1"
        assert query["posteriors"]["hear_bark"] == [1.0, 0.0]
        for probs in query["posteriors"].values():
            assert abs(sum(probs) - 1.0) < 1e-4
        assert stats["stats"]["requests_total"] == 1
        assert bye["stopping"]
